"""Trace-context propagation and span-shard stitching."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import trace
from repro.obs.export import validate_chrome_trace


class TestTraceContext:
    def test_mint_is_fresh(self):
        a, b = trace.mint(), trace.mint()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id
        assert a.parent_id is None

    def test_mint_honors_client_id(self):
        ctx = trace.mint("client-req-42")
        assert ctx.trace_id == "client-req-42"

    def test_mint_sanitizes_hostile_client_id(self):
        ctx = trace.mint("../../etc/passwd\n<script>")
        assert "/" not in ctx.trace_id
        assert "\n" not in ctx.trace_id
        assert "<" not in ctx.trace_id
        # an id reduced to nothing falls back to a minted one
        assert trace.mint("///...\\\\").trace_id.replace(".", "") != ""

    def test_roundtrip_dict(self):
        ctx = trace.mint()
        assert trace.TraceContext.from_dict(ctx.to_dict()) == ctx

    @pytest.mark.parametrize(
        "document",
        [None, "x", 42, {}, {"trace": ""}, {"trace": "t"}, {"trace": 1, "span": "s"}],
    )
    def test_from_dict_rejects_malformed(self, document):
        assert trace.TraceContext.from_dict(document) is None

    def test_activate_is_scoped(self):
        assert trace.current() is None
        ctx = trace.mint()
        with trace.activate(ctx):
            assert trace.current() is ctx
            assert trace.current_trace_id() == ctx.trace_id
        assert trace.current() is None

    def test_activate_none_is_noop(self):
        with trace.activate(None):
            assert trace.current() is None


class TestSpanShards:
    def test_span_without_sink_writes_nothing(self, tmp_path):
        with trace.activate(trace.mint()):
            with trace.span("orphan"):
                pass
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_span_without_context_writes_nothing(self, tmp_path):
        trace.configure_sink(tmp_path, "test")
        with trace.span("orphan"):
            pass
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_span_records_nested_parentage(self, tmp_path):
        trace.configure_sink(tmp_path, "test")
        ctx = trace.mint()
        with trace.activate(ctx):
            with trace.span("outer") as outer:
                with trace.span("inner", detail=7):
                    pass
        records = trace.load_spans(tmp_path, ctx.trace_id)
        by_name = {r["name"]: r for r in records}
        assert set(by_name) == {"outer", "inner"}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["outer"]["parent"] == ctx.span_id
        assert by_name["inner"]["data"] == {"detail": 7}
        assert by_name["outer"]["pid"] == os.getpid()
        assert outer.trace_id == ctx.trace_id

    def test_load_spans_skips_torn_lines(self, tmp_path):
        trace.configure_sink(tmp_path, "test")
        ctx = trace.mint()
        with trace.activate(ctx):
            with trace.span("good"):
                pass
        shard = next(tmp_path.glob(f"{ctx.trace_id}-*.jsonl"))
        with open(shard, "a") as handle:
            handle.write('{"trace": "' + ctx.trace_id + '", "name": "to')  # torn
            handle.write("\nnot json at all\n")
            handle.write(json.dumps({"trace": ctx.trace_id, "name": "bad-ts",
                                     "ts": "yesterday", "dur": 0}) + "\n")
        records = trace.load_spans(tmp_path, ctx.trace_id)
        assert [r["name"] for r in records] == ["good"]

    def test_event_is_zero_duration(self, tmp_path):
        trace.configure_sink(tmp_path, "test")
        ctx = trace.mint()
        with trace.activate(ctx):
            trace.event("marker", kind="x")
        (record,) = trace.load_spans(tmp_path, ctx.trace_id)
        assert record["dur"] == 0.0

    def test_unwritable_sink_degrades_silently(self, tmp_path):
        # a file where the directory should be: mkdir fails, tracing off
        blocker = tmp_path / "blocked"
        blocker.write_text("x")
        assert trace.configure_sink(blocker / "sub") is None
        with trace.activate(trace.mint()):
            with trace.span("dropped"):
                pass  # must not raise


class TestStitch:
    def test_stitch_multiprocess_shards(self, tmp_path):
        """Shards from distinct OS pids become distinct Chrome pids,
        ordered by first span start, and the result validates."""
        ctx = trace.mint()
        base = 1000.0
        for fake_pid, offset, name, proc in [
            (4711, 0.0, "serve.job", "daemon"),
            (4712, 0.010, "serve.attempt", "worker"),
        ]:
            shard = tmp_path / f"{ctx.trace_id}-{fake_pid}.jsonl"
            shard.write_text(json.dumps({
                "trace": ctx.trace_id, "span": trace.mint_id(),
                "parent": ctx.span_id, "name": name, "ts": base + offset,
                "dur": 0.005, "pid": fake_pid, "tid": 1, "proc": proc,
                "data": {},
            }) + "\n")
        document = trace.stitch(tmp_path, ctx.trace_id)
        assert validate_chrome_trace(document) is None or True  # raises on bad
        spans = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == 2
        by_name = {e["name"]: e for e in spans}
        # daemon span started first -> Chrome pid 1
        assert by_name["serve.job"]["pid"] == 1
        assert by_name["serve.attempt"]["pid"] == 2
        # every span advertises the request's trace id
        assert all(e["args"]["trace"] == ctx.trace_id for e in spans)
        metas = [e for e in document["traceEvents"] if e.get("ph") == "M"]
        names = {e["args"]["name"] for e in metas if e["name"] == "process_name"}
        assert any("daemon" in n for n in names)
        assert any("worker" in n for n in names)

    def test_stitch_unknown_trace_raises(self, tmp_path):
        with pytest.raises(ValueError):
            trace.stitch(tmp_path, "nope")

    def test_stitch_nesting_is_acyclic(self, tmp_path):
        trace.configure_sink(tmp_path, "test")
        ctx = trace.mint()
        with trace.activate(ctx):
            with trace.span("a"):
                with trace.span("b"):
                    with trace.span("c"):
                        pass
        document = trace.stitch(tmp_path, ctx.trace_id)
        spans = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        parent_of = {
            e["args"]["span"]: e["args"].get("parent") for e in spans
        }
        for start in parent_of:
            seen = set()
            node = start
            while node in parent_of:
                assert node not in seen, "cycle in span parentage"
                seen.add(node)
                node = parent_of[node]


class TestSlogCorrelation:
    def test_log_lines_carry_trace_ids(self, capsys):
        from repro.obs import slog

        slog.configure("info")
        ctx = trace.mint()
        with trace.activate(ctx):
            slog.info("test.correlated", extra=1)
        slog.configure(None)
        line = capsys.readouterr().err.strip().splitlines()[-1]
        record = json.loads(line)
        assert record["trace"] == ctx.trace_id
        assert record["span"] == ctx.span_id
