"""Profile export tests: engine instrumentation, JSON round-trip, tables."""

import json

from repro.cgraph.stats import global_stats
from repro.lang import programs
from repro.obs import Profile, profile_program
from repro.obs import recorder as obs


def _profile(name="exchange_with_root", **kwargs):
    return profile_program(programs.get(name), **kwargs)


class TestEngineInstrumentation:
    def test_engine_spans_recorded(self):
        profile, result = _profile()
        assert not result.gave_up
        for span in ("engine.run", "engine.step", "engine.match", "engine.join"):
            assert span in profile.spans, span
        assert profile.spans["engine.run"]["count"] == 1
        assert profile.spans["engine.step"]["count"] == profile.counters["engine.steps"]

    def test_closure_counts_flow_into_profile(self):
        profile, _ = _profile()
        assert profile.full_calls > 0
        assert profile.incremental_calls > 0
        assert profile.counters["cgraph.closure.full.calls"] == profile.full_calls
        assert (
            profile.histograms["cgraph.closure.full.vars"]["count"] == profile.full_calls
        )

    def test_span_totals_nest_consistently(self):
        profile, _ = _profile()
        run = profile.spans["engine.run"]
        step = profile.spans["engine.step"]
        assert step["total_time"] <= run["total_time"] + 1e-9
        # engine.run's self time excludes the per-step work it contains
        assert run["self_time"] < run["total_time"]

    def test_profile_isolated_from_global_state(self):
        before = global_stats().full_calls
        _profile()
        assert global_stats().full_calls == before
        assert not obs.enabled()

    def test_disabled_mode_adds_no_entries(self):
        from repro.analyses.simple_symbolic import analyze_program

        assert not obs.enabled()
        result, _, _ = analyze_program(programs.get("pingpong"))
        assert not result.gave_up
        assert obs.active_recorder().snapshot()["spans"] == {}


class TestProfileDocument:
    def test_json_round_trip(self):
        profile, _ = _profile()
        text = profile.to_json()
        data = json.loads(text)
        assert data["program"] == "exchange_with_root"
        assert data["mode"] == "optimized"
        restored = Profile.from_json(text)
        assert restored.full_calls == profile.full_calls
        assert restored.closure_share() == profile.closure_share()
        assert restored.spans == profile.spans

    def test_table_consistent_with_closure_report(self):
        profile, _ = _profile()
        table = profile.table()
        # the closure block is ClosureStats.report() verbatim
        assert profile.closure["report"] in table
        assert "Section IX cost profile" in table
        assert "engine.step" in table

    def test_naive_mode_label_and_shape(self):
        profile, result = _profile(naive=True)
        assert not result.gave_up
        assert profile.mode == "naive"
        # naive reclosure performs strictly more full closures
        optimized, _ = _profile()
        assert profile.full_calls > optimized.full_calls
