"""Recorder semantics: span nesting, counters, histograms, enable/disable."""

import time

from repro.obs import recorder as obs
from repro.obs.recorder import NullRecorder, Recorder


class TestDisabledIsNoOp:
    def test_default_state_is_disabled(self):
        assert not obs.enabled()
        assert isinstance(obs.active_recorder(), NullRecorder)

    def test_disabled_records_nothing(self):
        with obs.span("outer"):
            obs.incr("events")
            obs.observe("sizes", 3)
        snap = obs.active_recorder().snapshot()
        assert snap == {"spans": {}, "counters": {}, "histograms": {}}

    def test_null_span_is_shared_singleton(self):
        null = NullRecorder()
        assert null.span("a") is null.span("b")


class TestSpans:
    def test_span_counts_and_times(self):
        rec = Recorder()
        with rec.span("work"):
            time.sleep(0.002)
        with rec.span("work"):
            pass
        stats = rec.spans["work"]
        assert stats.count == 2
        assert stats.total_time >= 0.002
        assert stats.self_time <= stats.total_time + 1e-9

    def test_nested_spans_attribute_self_time(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                time.sleep(0.005)
        outer, inner = rec.spans["outer"], rec.spans["inner"]
        # the outer span's total includes the inner, its self-time excludes it
        assert outer.total_time >= inner.total_time
        assert outer.self_time < outer.total_time
        assert abs((outer.total_time - outer.self_time) - inner.total_time) < 1e-3

    def test_sibling_spans_both_deducted_from_parent(self):
        rec = Recorder()
        with rec.span("parent"):
            with rec.span("a"):
                time.sleep(0.002)
            with rec.span("b"):
                time.sleep(0.002)
        parent = rec.spans["parent"]
        children = rec.spans["a"].total_time + rec.spans["b"].total_time
        assert abs((parent.total_time - parent.self_time) - children) < 1e-3

    def test_recursive_span_name_aggregates(self):
        rec = Recorder()
        with rec.span("f"):
            with rec.span("f"):
                pass
        assert rec.spans["f"].count == 2


class TestCountersAndHistograms:
    def test_counter_accumulates(self):
        rec = Recorder()
        rec.incr("n")
        rec.incr("n", 4)
        assert rec.counters["n"] == 5

    def test_histogram_summary(self):
        rec = Recorder()
        for v in (1, 5, 3):
            rec.observe("vals", v)
        h = rec.histograms["vals"]
        assert (h.count, h.total, h.min, h.max) == (3, 9, 1, 5)
        assert h.mean == 3

    def test_empty_histogram_mean(self):
        from repro.obs.recorder import HistogramStats

        assert HistogramStats().mean == 0.0


class TestGlobalState:
    def test_enable_installs_and_disable_restores(self):
        rec = obs.enable()
        assert obs.enabled()
        assert obs.active_recorder() is rec
        assert obs.enable() is rec  # idempotent without an argument
        obs.disable()
        assert not obs.enabled()

    def test_module_helpers_hit_active_recorder(self):
        rec = obs.enable()
        with obs.span("s"):
            obs.incr("c")
            obs.observe("h", 1.0)
        assert rec.spans["s"].count == 1
        assert rec.counters["c"] == 1
        assert rec.histograms["h"].count == 1

    def test_reset_disables_and_clears(self):
        rec = obs.enable()
        rec.incr("c")
        obs.reset()
        assert not obs.enabled()
        assert rec.counters == {}

    def test_recording_restores_previous_state(self):
        assert not obs.enabled()
        with obs.recording() as rec:
            assert obs.active_recorder() is rec
            obs.incr("inside")
        assert not obs.enabled()
        assert rec.counters["inside"] == 1

    def test_recording_restores_an_enabled_recorder(self):
        outer = obs.enable()
        with obs.recording() as inner:
            obs.incr("c")
        assert obs.active_recorder() is outer
        assert "c" not in outer.counters
        assert inner.counters["c"] == 1

    def test_snapshot_is_json_plain(self):
        import json

        rec = Recorder()
        with rec.span("s"):
            rec.observe("h", 2.5)
        text = json.dumps(rec.snapshot())
        assert json.loads(text)["histograms"]["h"]["mean"] == 2.5
