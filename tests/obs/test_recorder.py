"""Recorder semantics: span nesting, counters, histograms, enable/disable."""

import time

from repro.obs import recorder as obs
from repro.obs.recorder import NullRecorder, Recorder


class TestDisabledIsNoOp:
    def test_default_state_is_disabled(self):
        assert not obs.enabled()
        assert isinstance(obs.active_recorder(), NullRecorder)

    def test_disabled_records_nothing(self):
        with obs.span("outer"):
            obs.incr("events")
            obs.observe("sizes", 3)
        snap = obs.active_recorder().snapshot()
        assert snap == {"spans": {}, "counters": {}, "histograms": {}}

    def test_null_span_is_shared_singleton(self):
        null = NullRecorder()
        assert null.span("a") is null.span("b")


class TestSpans:
    def test_span_counts_and_times(self):
        rec = Recorder()
        with rec.span("work"):
            time.sleep(0.002)
        with rec.span("work"):
            pass
        stats = rec.spans["work"]
        assert stats.count == 2
        assert stats.total_time >= 0.002
        assert stats.self_time <= stats.total_time + 1e-9

    def test_nested_spans_attribute_self_time(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                time.sleep(0.005)
        outer, inner = rec.spans["outer"], rec.spans["inner"]
        # the outer span's total includes the inner, its self-time excludes it
        assert outer.total_time >= inner.total_time
        assert outer.self_time < outer.total_time
        assert abs((outer.total_time - outer.self_time) - inner.total_time) < 1e-3

    def test_sibling_spans_both_deducted_from_parent(self):
        rec = Recorder()
        with rec.span("parent"):
            with rec.span("a"):
                time.sleep(0.002)
            with rec.span("b"):
                time.sleep(0.002)
        parent = rec.spans["parent"]
        children = rec.spans["a"].total_time + rec.spans["b"].total_time
        assert abs((parent.total_time - parent.self_time) - children) < 1e-3

    def test_recursive_span_name_aggregates(self):
        rec = Recorder()
        with rec.span("f"):
            with rec.span("f"):
                pass
        assert rec.spans["f"].count == 2


class TestCountersAndHistograms:
    def test_counter_accumulates(self):
        rec = Recorder()
        rec.incr("n")
        rec.incr("n", 4)
        assert rec.counters["n"] == 5

    def test_histogram_summary(self):
        rec = Recorder()
        for v in (1, 5, 3):
            rec.observe("vals", v)
        h = rec.histograms["vals"]
        assert (h.count, h.total, h.min, h.max) == (3, 9, 1, 5)
        assert h.mean == 3

    def test_empty_histogram_mean(self):
        from repro.obs.recorder import HistogramStats

        assert HistogramStats().mean == 0.0


class TestPercentiles:
    def test_empty_series_is_none_never_nan(self):
        from repro.obs.recorder import HistogramStats

        h = HistogramStats()
        assert h.percentiles() is None
        # the snapshot form must stay valid JSON (null, not NaN)
        rec = Recorder()
        rec.histograms["empty"] = h
        import json

        snap = json.loads(json.dumps(rec.snapshot(), allow_nan=False))
        assert snap["histograms"]["empty"]["percentiles"] is None

    def test_nan_observations_are_dropped(self):
        rec = Recorder()
        rec.observe("vals", float("nan"))
        rec.observe("vals", 2.0)
        h = rec.histograms["vals"]
        assert h.count == 1
        assert h.percentiles() == {"p50": 2.0, "p90": 2.0, "p99": 2.0}

    def test_single_sample_percentiles(self):
        from repro.obs.recorder import HistogramStats

        h = HistogramStats()
        h.add(7.0)
        assert h.percentiles() == {"p50": 7.0, "p90": 7.0, "p99": 7.0}

    def test_percentiles_are_order_statistics(self):
        from repro.obs.recorder import HistogramStats

        h = HistogramStats()
        for v in range(1, 101):
            h.add(float(v))
        p = h.percentiles()
        # nearest-rank over the sorted reservoir (0-based index q*(n-1)+0.5)
        assert p["p50"] == 51.0
        assert p["p90"] == 90.0
        assert p["p99"] == 99.0
        assert p["p50"] <= p["p90"] <= p["p99"]

    def test_reservoir_caps_retained_samples(self):
        from repro.obs.recorder import RESERVOIR_SIZE, HistogramStats

        h = HistogramStats()
        for v in range(RESERVOIR_SIZE * 2):
            h.add(float(v))
        assert h.count == RESERVOIR_SIZE * 2
        assert len(h._samples) == RESERVOIR_SIZE
        assert h.percentiles() is not None


class TestGlobalState:
    def test_enable_installs_and_disable_restores(self):
        rec = obs.enable()
        assert obs.enabled()
        assert obs.active_recorder() is rec
        assert obs.enable() is rec  # idempotent without an argument
        obs.disable()
        assert not obs.enabled()

    def test_module_helpers_hit_active_recorder(self):
        rec = obs.enable()
        with obs.span("s"):
            obs.incr("c")
            obs.observe("h", 1.0)
        assert rec.spans["s"].count == 1
        assert rec.counters["c"] == 1
        assert rec.histograms["h"].count == 1

    def test_reset_disables_and_clears(self):
        rec = obs.enable()
        rec.incr("c")
        obs.reset()
        assert not obs.enabled()
        assert rec.counters == {}

    def test_recording_restores_previous_state(self):
        assert not obs.enabled()
        with obs.recording() as rec:
            assert obs.active_recorder() is rec
            obs.incr("inside")
        assert not obs.enabled()
        assert rec.counters["inside"] == 1

    def test_recording_restores_an_enabled_recorder(self):
        outer = obs.enable()
        with obs.recording() as inner:
            obs.incr("c")
        assert obs.active_recorder() is outer
        assert "c" not in outer.counters
        assert inner.counters["c"] == 1

    def test_snapshot_is_json_plain(self):
        import json

        rec = Recorder()
        with rec.span("s"):
            rec.observe("h", 2.5)
        text = json.dumps(rec.snapshot())
        assert json.loads(text)["histograms"]["h"]["mean"] == 2.5


class TestLockedRecorder:
    """``Recorder(locked=True)``: the thread-safe shared recorder the
    analysis service installs."""

    def test_concurrent_incr_loses_no_updates(self):
        import threading

        rec = Recorder(locked=True)
        threads = [
            threading.Thread(
                target=lambda: [rec.incr("c") for _ in range(2000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.counters["c"] == 16000

    def test_concurrent_merge_counters(self):
        import threading

        rec = Recorder(locked=True)
        threads = [
            threading.Thread(
                target=lambda: [rec.merge_counters({"a": 1, "b": 2}) for _ in range(500)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.counters == {"a": 4000, "b": 8000}

    def test_span_stacks_are_per_thread(self):
        import threading

        rec = Recorder(locked=True)
        errors = []

        def worker():
            try:
                for _ in range(200):
                    with rec.span("outer"):
                        with rec.span("inner"):
                            pass
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert rec.spans["outer"].count == 1200
        assert rec.spans["inner"].count == 1200
        # nested attribution stays sane: inner time is inside outer time
        assert rec.spans["outer"].self_time <= rec.spans["outer"].total_time

    def test_concurrent_observe(self):
        import threading

        rec = Recorder(locked=True)
        threads = [
            threading.Thread(
                target=lambda: [rec.observe("h", 1.0) for _ in range(1000)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.histograms["h"].count == 4000
        assert rec.histograms["h"].total == 4000.0


class TestJobRecording:
    """Per-thread recorder isolation for concurrent service jobs."""

    def test_override_shadows_the_global_recorder(self):
        shared = obs.enable(Recorder(locked=True))
        with obs.job_recording() as mine:
            obs.incr("job.events")
            assert obs.active_recorder() is mine
        assert obs.active_recorder() is shared
        assert "job.events" not in shared.counters
        assert mine.counters["job.events"] == 1

    def test_merge_after_job_lands_in_shared(self):
        shared = obs.enable(Recorder(locked=True))
        with obs.job_recording() as mine:
            obs.incr("job.events", 3)
            counters = dict(mine.counters)
        obs.merge_counters(counters)
        assert shared.counters["job.events"] == 3

    def test_concurrent_jobs_do_not_cross_talk(self):
        import threading

        shared = obs.enable(Recorder(locked=True))
        seen = {}

        def job(name, amount):
            with obs.job_recording() as mine:
                for _ in range(amount):
                    obs.incr("work")
                seen[name] = dict(mine.counters)
            obs.merge_counters(seen[name])

        threads = [
            threading.Thread(target=job, args=(f"job{i}", (i + 1) * 100))
            for i in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [seen[f"job{i}"]["work"] for i in range(5)] == [
            100, 200, 300, 400, 500
        ]
        assert shared.counters["work"] == 1500

    def test_nested_job_recording_restores_previous(self):
        with obs.job_recording() as outer:
            with obs.job_recording() as inner:
                obs.incr("deep")
                assert obs.active_recorder() is inner
            assert obs.active_recorder() is outer
            obs.incr("shallow")
        assert inner.counters == {"deep": 1}
        assert outer.counters == {"shallow": 1}

    def test_reset_clears_the_thread_override(self):
        from repro.obs.recorder import _tls

        obs.enable()
        _tls.override = Recorder()
        obs.reset()
        assert getattr(_tls, "override", None) is None
        assert not obs.enabled()
