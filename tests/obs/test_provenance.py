"""Provenance flight recorder: ring buffer, spill, chains, engine wiring."""

from __future__ import annotations

import json

from repro.analyses.simple_symbolic import SimpleSymbolicClient, analyze_program
from repro.core import diagnostics
from repro.core.engine import EngineLimits, PCFGEngine
from repro.lang import programs
from repro.lang.cfg import build_cfg
from repro.obs import provenance
from repro.obs.provenance import ProvenanceEvent, ProvenanceRecorder, _plain


class TestPlain:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, "x", 2.5):
            assert _plain(value) == value

    def test_nan_and_inf_become_strings(self):
        assert _plain(float("nan")) == "nan"
        assert _plain(float("inf")) == "inf"

    def test_sets_sort_and_tuples_listify(self):
        assert _plain({3, 1, 2}) == [1, 2, 3]
        assert _plain((1, "a")) == [1, "a"]

    def test_dict_keys_stringified(self):
        assert _plain({(1, 2): "v"}) == {"(1, 2)": "v"}

    def test_depth_cap_stringifies(self):
        deep = [[[[[[[["bottom"]]]]]]]]
        flattened = _plain(deep)
        assert json.dumps(flattened)  # always JSON-serializable

    def test_arbitrary_objects_become_str(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert _plain(Odd()) == "<odd>"


class TestEventRoundtrip:
    def test_to_from_dict_roundtrip(self):
        event = ProvenanceEvent(
            event_id=7,
            kind="widen",
            step=12,
            node_key=((3, 4), ()),
            parents=(5, 6),
            detail="via transfer",
            data={"x": 1},
            ts=0.25,
            dur=0.001,
        )
        back = ProvenanceEvent.from_dict(event.to_dict())
        assert back == event

    def test_describe_mentions_id_kind_and_node(self):
        event = ProvenanceEvent(event_id=3, kind="match", node_key=((1,), ()))
        text = event.describe()
        assert "#3" in text and "match" in text and "1" in text


class TestRecorder:
    def test_ids_are_sequential_and_parents_filter_none(self):
        rec = ProvenanceRecorder()
        first = rec.emit("run_start")
        second = rec.emit("entry", parents=(first, None))
        assert (first, second) == (1, 2)
        assert rec.get(second).parents == (first,)
        assert rec.last_event_id == second
        assert rec.total_events == 2

    def test_node_event_tracks_last_definer(self):
        rec = ProvenanceRecorder()
        key = ((1,), ())
        rec.emit("entry", node_key=key)
        latest = rec.emit("transfer", node_key=key)
        assert rec.node_event[key] == latest
        assert [e.kind for e in rec.events_for_node((1,))] == ["entry", "transfer"]

    def test_ring_evicts_oldest_without_spill(self):
        rec = ProvenanceRecorder(capacity=16)
        for _ in range(20):
            rec.emit("transfer")
        assert rec.evicted == 4
        assert rec.get(1) is None  # dropped, no spill configured
        assert rec.get(20) is not None
        assert len(rec.events()) == 16

    def test_spill_keeps_evicted_events_resolvable(self, tmp_path):
        spill = tmp_path / "journal.jsonl"
        rec = ProvenanceRecorder(capacity=16, spill_path=str(spill))
        parent = rec.emit("run_start")
        for _ in range(20):
            rec.emit("transfer", parents=(parent,))
        assert rec.evicted > 0
        evicted = rec.get(1)
        assert evicted is not None and evicted.kind == "run_start"
        # the spill file itself holds the evicted prefix as JSONL
        lines = spill.read_text().splitlines()
        assert len(lines) == rec.evicted
        assert json.loads(lines[0])["kind"] == "run_start"

    def test_chain_is_causal_order_and_deduplicated(self):
        rec = ProvenanceRecorder()
        root = rec.emit("run_start")
        a = rec.emit("entry", parents=(root,))
        b = rec.emit("transfer", parents=(a,))
        joined = rec.emit("join", parents=(a, b))  # diamond: a reachable twice
        chain = rec.chain(joined)
        assert [e.event_id for e in chain] == [root, a, b, joined]

    def test_chain_resolves_through_spill(self, tmp_path):
        spill = tmp_path / "journal.jsonl"
        rec = ProvenanceRecorder(capacity=16, spill_path=str(spill))
        previous = rec.emit("run_start")
        for _ in range(40):
            previous = rec.emit("transfer", parents=(previous,))
        chain = rec.chain(previous)
        assert chain[0].kind == "run_start"
        assert len(chain) == 41

    def test_chain_truncates_silently_without_spill(self):
        rec = ProvenanceRecorder(capacity=16)
        previous = rec.emit("run_start")
        for _ in range(40):
            previous = rec.emit("transfer", parents=(previous,))
        chain = rec.chain(previous)
        assert chain[-1].event_id == previous
        assert len(chain) == 16  # only the live suffix is reachable

    def test_kind_counts(self):
        rec = ProvenanceRecorder()
        rec.emit("transfer")
        rec.emit("transfer")
        rec.emit("match")
        assert rec.kind_counts() == {"transfer": 2, "match": 1}


class TestSnapshotPreload:
    def test_roundtrip_continues_ids_and_node_map(self):
        rec = ProvenanceRecorder()
        key = ((2,), ())
        rec.emit("run_start")
        rec.emit("entry", node_key=key, parents=(1,))
        state = rec.snapshot_state()
        assert json.dumps(state)  # snapshot must be JSON-plain

        fresh = ProvenanceRecorder()
        fresh.preload(state)
        assert fresh.node_event[key] == 2
        assert fresh.last_event_id == 2
        next_id = fresh.emit("checkpoint_resume", parents=(2,))
        assert next_id == 3  # ids continue past the restored journal

    def test_preload_respects_capacity(self):
        rec = ProvenanceRecorder()
        for _ in range(40):
            rec.emit("transfer")
        small = ProvenanceRecorder(capacity=16)
        small.preload(rec.snapshot_state())
        assert len(small.events()) == 16
        assert small.emit("transfer") == 41


class TestSwitchboard:
    def test_disabled_by_default(self):
        assert provenance.active() is None
        assert not provenance.enabled()
        assert provenance.emit("transfer") is None

    def test_enable_disable_reset(self):
        rec = provenance.enable()
        assert provenance.active() is rec
        assert provenance.enable() is rec  # idempotent
        provenance.disable()
        assert provenance.active() is None

    def test_recording_restores_previous(self):
        outer = provenance.enable()
        with provenance.recording() as inner:
            assert provenance.active() is inner
            provenance.emit("transfer")
        assert provenance.active() is outer
        assert inner.total_events == 1
        assert outer.total_events == 0


class TestEngineIntegration:
    def _run(self, name, limits=None):
        program = programs.get(name).parse()
        cfg = build_cfg(program)
        engine = PCFGEngine(cfg, SimpleSymbolicClient(), limits)
        return engine.run(), cfg

    def test_disabled_run_records_nothing(self):
        result, _ = self._run("pingpong")
        assert result.confidence == diagnostics.EXACT
        assert provenance.active() is None

    def test_run_produces_a_resolvable_dag(self):
        with provenance.recording() as prov:
            result, _ = self._run("pingpong")
        assert result.confidence == diagnostics.EXACT
        events = prov.events()
        assert events[0].kind == "run_start"
        kinds = prov.kind_counts()
        for expected in ("entry", "transfer", "match_attempt", "match"):
            assert kinds.get(expected), f"missing {expected} events: {kinds}"
        # every parent reference resolves within the ring
        for event in events:
            for parent in event.parents:
                assert prov.get(parent) is not None, event

    def test_every_chain_reaches_run_start(self):
        with provenance.recording() as prov:
            self._run("pingpong")
        for event in prov.events():
            chain = prov.chain(event.event_id)
            assert chain[0].kind == "run_start", event

    def test_budget_trip_diagnostic_links_to_event(self):
        with provenance.recording() as prov:
            result, _ = self._run("pingpong", EngineLimits(max_steps=3))
        trips = [d for d in result.diagnostics if d.code == diagnostics.BUDGET_STEPS]
        assert trips and trips[0].provenance_id is not None
        event = prov.get(trips[0].provenance_id)
        assert event.kind == "budget_trip"
        assert prov.chain(event.event_id)[0].kind == "run_start"

    def test_giveup_diagnostic_links_to_event(self):
        with provenance.recording() as prov:
            result, _ = self._run("ring_modular")
        assert result.gave_up
        linked = [d for d in result.diagnostics if d.provenance_id is not None]
        assert linked
        kinds = {prov.get(d.provenance_id).kind for d in linked}
        assert kinds <= {"giveup", "client_fault", "cfg_malformed", "budget_trip"}

    def test_match_events_carry_client_deltas(self):
        with provenance.recording() as prov:
            self._run("pingpong")
        attempts = [e for e in prov.events() if e.kind == "match_attempt"]
        assert attempts
        assert any(
            e.data is not None and "attempts" in e.data for e in attempts
        ), "match_attempt events never carried the client's match trace"
        transfers = [e for e in prov.events() if e.kind == "transfer"]
        assert any(e.data for e in transfers), "no transfer carried a delta"

    def test_journal_survives_snapshot_resume(self):
        program = programs.get("pingpong").parse()
        with provenance.recording() as first:
            tripped, _, _ = analyze_program(
                program, SimpleSymbolicClient(), EngineLimits(max_steps=4)
            )
        assert tripped.snapshot is not None
        with provenance.recording() as second:
            resumed, _, _ = analyze_program(
                program, SimpleSymbolicClient(), resume=tripped.snapshot
            )
        assert resumed.resumed_from.startswith("snapshot(")
        kinds = second.kind_counts()
        assert kinds.get("checkpoint_resume") == 1
        # the restored journal is part of the new recorder: the resumed
        # run's first fresh event id continues past the snapshot's
        assert second.total_events > first.total_events
        resume_events = [
            e for e in second.events() if e.kind == "checkpoint_resume"
        ]
        chain = second.chain(resume_events[0].event_id)
        assert chain[0].kind == "run_start"  # the *interrupted* run's start
