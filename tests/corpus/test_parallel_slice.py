"""Sharded-vs-serial equivalence over a large generated corpus slice.

The 12-program named corpus (``test_lattice_equivalence``) covers the
paper's topologies; this sweep covers what the grammar can invent — 200
seeded-generator programs, each analyzed serially and with the sharded
engine at several worker counts.  The observable outcome (convergence,
confidence, match relation, vacuous blocks) must be identical at every
worker count: the parallel executor is only allowed to be a scheduler.

Excluded from tier-1 by the ``parallel_slow`` marker (hundreds of pool
spawns); the CI ``parallel-smoke`` job runs it with
``pytest -m parallel_slow``.
"""

from __future__ import annotations

import pytest

from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.core.engine import PCFGEngine
from repro.core.shard import ShardedEngine
from repro.corpus.generator import generate, seed_stream
from repro.corpus.sweep import SMOKE_SEED
from repro.lang.cfg import build_cfg

pytestmark = pytest.mark.parallel_slow

SLICE_SIZE = 200


def _answer(result):
    return (
        result.confidence,
        result.gave_up,
        frozenset(result.matches),
        tuple(result.vacuous_blocks),
        len(result.final_states),
    )


@pytest.mark.parametrize("jobs", [2, 4])
def test_generated_slice_sharded_equivalence(jobs):
    mismatches = []
    for seed in seed_stream(SMOKE_SEED, SLICE_SIZE):
        generated = generate(seed)
        program = generated.parse()
        serial = _answer(
            PCFGEngine(build_cfg(program), SimpleSymbolicClient()).run()
        )
        sharded = _answer(
            ShardedEngine(
                build_cfg(program), SimpleSymbolicClient(), jobs=jobs
            ).run()
        )
        if sharded != serial:
            mismatches.append((generated.corpus_id, seed, serial, sharded))
    assert not mismatches, (
        f"jobs={jobs}: {len(mismatches)} generated program(s) changed their "
        f"answer under sharding: {mismatches[:5]}"
    )
