"""Permanent regression replay: every divergence the sweep ever found.

Each ``corpus/regressions/<corpus_id>.mpl`` is a (minimized) program whose
analyzer claim once failed to cover a concrete execution, with the filing
metadata alongside in ``<corpus_id>.json``.  This suite re-runs the full
differential check on the checked-in source text — not a regeneration, so
the replay survives grammar changes — and asserts the divergence stays
fixed.  Faulted entries (minimized under an injected harness fault) assert
the fault-free analysis is clean instead.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.corpus.sweep import check_program
from repro.lang.parser import parse

REGRESSIONS = Path(__file__).resolve().parents[2] / "corpus" / "regressions"
CASES = sorted(REGRESSIONS.glob("*.mpl")) if REGRESSIONS.is_dir() else []


def _case_id(path: Path) -> str:
    return path.stem


@pytest.mark.parametrize("mpl_path", CASES, ids=_case_id)
def test_regression_stays_fixed(mpl_path):
    meta = json.loads(mpl_path.with_suffix(".json").read_text())
    program = parse(mpl_path.read_text())
    report, claimed, dynamic_count, statuses, divergences = check_program(
        program, meta["np_values"]
    )
    assert divergences == [], (
        f"{meta['corpus_id']} diverges again: {divergences} "
        f"(rung={report.rung_name}, claimed={sorted(claimed)})"
    )
    # the original filing recorded real dynamic matches; they must still be
    # claimed, not merely absent (guards against an oracle that went blind)
    if any(div["missing_edges"] for div in meta.get("divergences", ())):
        if meta.get("fault") is None:
            assert claimed, f"{meta['corpus_id']}: claim is empty"
            assert dynamic_count > 0, f"{meta['corpus_id']}: oracle saw nothing"


def test_every_regression_has_metadata():
    for mpl_path in CASES:
        meta_path = mpl_path.with_suffix(".json")
        assert meta_path.exists(), f"{mpl_path.name} lacks {meta_path.name}"
        meta = json.loads(meta_path.read_text())
        for key in ("corpus_id", "seed", "np_values", "divergences"):
            assert key in meta, f"{meta_path.name} lacks {key!r}"


def test_regressions_directory_is_tracked():
    assert REGRESSIONS.is_dir(), "corpus/regressions/ must exist"
    assert CASES, "the first filed regression (mplg1-b26c6652) is missing"
