"""Property tests for the corpus generator.

Every program the generator can ever emit must (1) parse, (2) round-trip
through the unparser/parser pair, and (3) build a structurally well-formed
CFG — the invariants the sweep harness and the checked-in manifest lean on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.generator import (
    ANALYZER_MIN_NP,
    GRAMMAR_VERSION,
    corpus_id_for,
    generate,
    generate_from_id,
    parse_corpus_id,
    seed_stream,
)
from repro.lang.build import to_source
from repro.lang.cfg import NodeKind, build_cfg
from repro.lang.parser import parse

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def assert_well_formed(cfg) -> None:
    """The structural invariants the engine enforces as ``CFG_MALFORMED``:
    branch nodes have exactly one True- and one False-successor, every
    other non-exit node exactly one unlabeled successor."""
    for node_id, node in cfg.nodes.items():
        succs = cfg.successors(node_id)
        if node.kind == NodeKind.EXIT:
            assert succs == [], f"exit node {node_id} has successors"
        elif node.kind == NodeKind.BRANCH:
            labels = sorted(label for _dst, label in succs)
            assert labels == [False, True], (
                f"branch node {node_id} has successors {succs}"
            )
        else:
            labels = [label for _dst, label in succs]
            assert labels == [None], f"node {node_id} has successors {succs}"


class TestGeneratedPrograms:
    @given(seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_parses_round_trips_and_builds_well_formed_cfg(self, seed):
        generated = generate(seed)
        program = generated.parse()  # (1) parses
        assert parse(to_source(program)) == program  # (2) round-trips
        assert_well_formed(build_cfg(program))  # (3) no CFG_MALFORMED

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_and_regenerable_from_id(self, seed):
        first = generate(seed)
        second = generate(seed)
        assert first == second
        assert generate_from_id(first.corpus_id) == first

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_np_values_respect_analyzer_precondition(self, seed):
        generated = generate(seed)
        assert generated.np_values, "every program needs oracle np values"
        assert all(np_ >= ANALYZER_MIN_NP for np_ in generated.np_values)
        assert all(np_ >= generated.axes["min_np"] for np_ in generated.np_values)
        assert list(generated.np_values) == sorted(set(generated.np_values))


class TestCorpusIds:
    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_id_round_trip(self, seed):
        corpus_id = corpus_id_for(seed)
        assert parse_corpus_id(corpus_id) == (GRAMMAR_VERSION, seed)

    def test_malformed_ids_rejected(self):
        for bad in ("mplg1-xyz", "mplg-00000001", "prog1-00000001", "mplg1-1"):
            with pytest.raises(ValueError):
                parse_corpus_id(bad)

    def test_seed_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            corpus_id_for(2**32)

    def test_wrong_grammar_version_rejected(self):
        other = corpus_id_for(7, grammar_version=GRAMMAR_VERSION + 1)
        with pytest.raises(ValueError, match="grammar"):
            generate_from_id(other)


class TestSeedStream:
    def test_deterministic_and_distinct(self):
        first = seed_stream(1337, 100)
        assert first == seed_stream(1337, 100)
        assert len(set(first)) == 100
        assert first[:50] == seed_stream(1337, 50)

    def test_different_bases_diverge(self):
        assert seed_stream(1, 20) != seed_stream(2, 20)
