"""Differential-sweep harness tests: oracle, fault injection, shrinking,
manifest drift detection, and the JSONL report format."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.corpus.generator import generate
from repro.corpus.sweep import (
    SMOKE_SEED,
    _inject_fault,
    check_program,
    file_regression,
    load_manifest,
    make_reproducer,
    run_one,
    run_sweep,
    shrink_divergence,
    write_manifest,
)
from repro.obs import recorder as obs

MANIFEST = Path(__file__).resolve().parents[2] / "corpus" / "manifest_smoke.json"


def first_communicating_seed(start: int = 0) -> int:
    """A seed whose program actually claims at least one match edge."""
    for seed in range(start, start + 200):
        record = run_one(seed)
        if record.outcome in ("exact", "partial") and record.claimed_edges > 0:
            return seed
    raise AssertionError("no communicating program in 200 seeds")


class TestManifest:
    def test_smoke_manifest_loads_drift_free(self):
        programs = load_manifest(MANIFEST)
        assert len(programs) == 50
        manifest = json.loads(MANIFEST.read_text())
        assert manifest["base_seed"] == SMOKE_SEED

    def test_drift_is_detected(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_manifest(path, base_seed=99, count=3)
        tampered = json.loads(path.read_text())
        tampered["programs"][1]["source_sha256"] = "0" * 64
        path.write_text(json.dumps(tampered))
        with pytest.raises(ValueError, match="drift"):
            load_manifest(path)

    def test_manifest_subset_sweeps_clean(self):
        for generated in load_manifest(MANIFEST)[:6]:
            record = run_one(generated.seed, generated=generated)
            assert record.outcome in ("exact", "partial", "gave_up"), (
                f"{generated.corpus_id}: {record.outcome} {record.error}"
            )


class TestFaultInjectionAndShrinking:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            _inject_fault({(1, 2)}, "no-such-fault")

    def test_injected_fault_diverges_and_minimizes(self, tmp_path):
        seed = first_communicating_seed()
        record = run_one(seed, fault="drop-match")
        assert record.outcome == "divergent"
        assert record.divergences

        generated = generate(seed)
        reproduces = make_reproducer(generated.np_values, fault="drop-match")
        program = generated.parse()
        minimized = shrink_divergence(program, reproduces)
        assert sum(1 for _ in minimized.walk()) <= sum(1 for _ in program.walk())
        # the minimized program must reproduce the divergence in isolation
        assert reproduces(minimized)

        filed = file_regression(record, minimized, tmp_path)
        assert filed.exists()
        meta = json.loads(filed.with_suffix(".json").read_text())
        assert meta["corpus_id"] == record.corpus_id
        assert meta["fault"] == "drop-match"

    def test_fault_free_check_has_no_divergence(self):
        seed = first_communicating_seed()
        generated = generate(seed)
        _report, claimed, _dyn, _statuses, divergences = check_program(
            generated.parse(), generated.np_values
        )
        assert claimed
        assert divergences == []


class TestSweepDriver:
    def test_jsonl_report_and_summary(self, tmp_path):
        report = tmp_path / "report.jsonl"
        seeds = [g.seed for g in load_manifest(MANIFEST)[:4]]
        summary = run_sweep(seeds, tier="smoke", base_seed=SMOKE_SEED,
                            report_path=report)
        assert summary.total == 4
        assert summary.failures == 0
        lines = report.read_text().splitlines()
        assert len(lines) == 5  # one record per program + the summary line
        for line in lines[:-1]:
            record = json.loads(line)
            assert record["corpus_id"].startswith("mplg")
            assert record["outcome"] in ("exact", "partial", "gave_up")
        assert "summary" in json.loads(lines[-1])

    def test_divergence_fails_and_files_regression(self, tmp_path):
        seed = first_communicating_seed()
        summary = run_sweep(
            [seed],
            tier="pr",
            base_seed=seed,
            fault="drop-match",
            shrink=True,
            regressions_dir=tmp_path / "regressions",
        )
        assert summary.failures == 1
        assert summary.divergent_ids
        assert summary.regression_files
        assert all(Path(f).exists() for f in summary.regression_files)

    def test_pool_workers_ship_their_counters_home(self):
        """The parallel sweep must not lose obs counters to the fork: the
        parent recorder sees the same engine counts at any job count."""
        seeds = [g.seed for g in load_manifest(MANIFEST)[:4]]
        with obs.recording() as recorder:
            serial = run_sweep(seeds, tier="smoke", base_seed=SMOKE_SEED)
        serial_steps = recorder.counters.get("engine.steps", 0)
        assert serial_steps > 0
        with obs.recording() as recorder:
            pooled = run_sweep(seeds, tier="smoke", base_seed=SMOKE_SEED, jobs=2)
        assert pooled.counts == serial.counts
        assert recorder.counters.get("engine.steps", 0) == serial_steps
        # per-record snapshots also survive in the JSONL payload
        assert recorder.counters.get("sweep.programs", 0) == len(seeds)

    def test_pool_counters_skipped_when_not_recording(self):
        seeds = [g.seed for g in load_manifest(MANIFEST)[:2]]

        captured = []
        summary = run_sweep(
            seeds, tier="smoke", base_seed=SMOKE_SEED, jobs=2,
            on_record=captured.append,
        )
        assert summary.total == 2
        # observability disabled: workers must not pay for a recorder
        assert all(record.counters is None for record in captured)
