"""CLI driver tests."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "exchange_with_root" in out

    def test_analyze_corpus_program(self, capsys):
        assert main(["exchange_with_root", "--np", "6"]) == 0
        out = capsys.readouterr().out
        assert "exchange-with-root" in out
        assert "MPI_Bcast" in out

    def test_analyze_file(self, tmp_path, capsys):
        source = tmp_path / "prog.mpl"
        source.write_text(
            "if id == 0 then send 1 -> 1 elif id == 1 then receive y <- 0 "
            "else skip end"
        )
        assert main([str(source), "--np", "4"]) == 0
        out = capsys.readouterr().out
        assert "communication topology" in out

    def test_bugs_flag(self, capsys):
        assert main(["message_leak", "--bugs"]) == 1
        assert "message leak" in capsys.readouterr().out

    def test_bugs_clean(self, capsys):
        assert main(["pingpong", "--bugs"]) == 0

    def test_constants_flag(self, capsys):
        assert main(["pingpong", "--constants"]) == 0
        out = capsys.readouterr().out
        assert "parallel=5" in out

    def test_gave_up_exit_code(self, capsys):
        assert main(["ring_modular", "--no-validate"]) == 1
        assert "gave up" in capsys.readouterr().out

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["no_such_program_xyz"])

    def test_no_target_prints_help(self, capsys):
        assert main([]) == 2

    def test_transpose_with_inputs(self, capsys):
        assert main(["transpose_square", "--np", "9", "--inputs", "3", "3"]) == 0
        out = capsys.readouterr().out
        assert "transpose" in out


class TestResilienceFlags:
    def test_degraded_run_prints_diagnostics(self, capsys):
        assert main(["ring_modular", "--no-validate"]) == 1
        out = capsys.readouterr().out
        assert "gave up" in out
        assert "confidence: partial" in out
        assert "GIVEUP_NO_MATCH" in out

    def test_fallback_reports_the_answering_rung(self, capsys):
        assert main(["ring_modular", "--no-validate", "--fallback"]) == 1
        out = capsys.readouterr().out
        assert "answer from rung: mpi-cfg" in out
        assert "rung cartesian: partial" in out

    def test_fallback_on_exact_program_exits_zero(self, capsys):
        assert main(["exchange_with_root", "--no-validate", "--fallback"]) == 0
        out = capsys.readouterr().out
        assert "answer from rung: cartesian" in out
        assert "communication topology" in out

    def test_strict_flag_still_exits_nonzero(self, capsys):
        assert main(["ring_modular", "--no-validate", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "gave up" in out
        assert "confidence: gave_up" in out

    def test_step_budget_flag(self, capsys):
        assert main(
            ["exchange_with_root", "--no-validate", "--max-steps", "3"]
        ) == 1
        out = capsys.readouterr().out
        assert "BUDGET_STEPS" in out

    def test_deadline_flag(self, capsys):
        assert main(
            ["exchange_with_root", "--no-validate", "--deadline", "0"]
        ) == 1
        assert "BUDGET_DEADLINE" in capsys.readouterr().out

    def test_malformed_cfg_is_one_line_error(self, capsys, monkeypatch):
        # force a structural error past the engine: break the CFG builder's
        # output before the engine sees it, via the bug-detector path which
        # re-raises through main()
        from repro.core.errors import MalformedCFG

        def boom(*args, **kwargs):
            raise MalformedCFG(7, "expected 1 unlabeled successor, found 0")

        monkeypatch.setattr("repro.cli.analyze_program", boom)
        assert main(["pingpong", "--no-validate"]) == 1
        err = capsys.readouterr().err
        assert err.strip() == (
            "error: malformed CFG: CFG node 7: expected 1 unlabeled "
            "successor, found 0"
        )

    def test_giveup_escaping_is_one_line_error(self, capsys, monkeypatch):
        from repro.core.errors import GiveUp

        def boom(*args, **kwargs):
            raise GiveUp("synthetic escape")

        monkeypatch.setattr("repro.cli.analyze_program", boom)
        assert main(["pingpong", "--no-validate"]) == 1
        err = capsys.readouterr().err
        assert err.strip() == "error: analysis gave up (T): synthetic escape"


class TestProfileSubcommand:
    def test_profile_corpus_program(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert main(["profile", "exchange_with_root", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Section IX cost profile" in out
        assert "closure share of total time" in out
        data = json.loads(out_path.read_text())
        assert data["program"] == "exchange_with_root"
        assert data["closure"]["full_calls"] > 0

    def test_profile_quickstart_program(self, tmp_path, capsys):
        from examples.quickstart import SOURCE

        source = tmp_path / "quickstart.mpl"
        source.write_text(SOURCE)
        assert main(["profile", str(source), "--no-json"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "engine.step" in out

    def test_profile_no_json_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", "pingpong", "--no-json"]) == 0
        assert not (tmp_path / "profile.json").exists()

    def test_profile_gave_up_exit_code(self, tmp_path):
        assert main(
            ["profile", "ring_modular", "--json", str(tmp_path / "p.json")]
        ) == 1
