"""CLI driver tests."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "exchange_with_root" in out

    def test_analyze_corpus_program(self, capsys):
        assert main(["exchange_with_root", "--np", "6"]) == 0
        out = capsys.readouterr().out
        assert "exchange-with-root" in out
        assert "MPI_Bcast" in out

    def test_analyze_file(self, tmp_path, capsys):
        source = tmp_path / "prog.mpl"
        source.write_text(
            "if id == 0 then send 1 -> 1 elif id == 1 then receive y <- 0 "
            "else skip end"
        )
        assert main([str(source), "--np", "4"]) == 0
        out = capsys.readouterr().out
        assert "communication topology" in out

    def test_bugs_flag(self, capsys):
        assert main(["message_leak", "--bugs"]) == 1
        assert "message leak" in capsys.readouterr().out

    def test_bugs_clean(self, capsys):
        assert main(["pingpong", "--bugs"]) == 0

    def test_constants_flag(self, capsys):
        assert main(["pingpong", "--constants"]) == 0
        out = capsys.readouterr().out
        assert "parallel=5" in out

    def test_gave_up_exit_code(self, capsys):
        assert main(["ring_modular", "--no-validate"]) == 1
        assert "gave up" in capsys.readouterr().out

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["no_such_program_xyz"])

    def test_no_target_prints_help(self, capsys):
        assert main([]) == 2

    def test_transpose_with_inputs(self, capsys):
        assert main(["transpose_square", "--np", "9", "--inputs", "3", "3"]) == 0
        out = capsys.readouterr().out
        assert "transpose" in out


class TestProfileSubcommand:
    def test_profile_corpus_program(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert main(["profile", "exchange_with_root", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Section IX cost profile" in out
        assert "closure share of total time" in out
        data = json.loads(out_path.read_text())
        assert data["program"] == "exchange_with_root"
        assert data["closure"]["full_calls"] > 0

    def test_profile_quickstart_program(self, tmp_path, capsys):
        from examples.quickstart import SOURCE

        source = tmp_path / "quickstart.mpl"
        source.write_text(SOURCE)
        assert main(["profile", str(source), "--no-json"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "engine.step" in out

    def test_profile_no_json_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", "pingpong", "--no-json"]) == 0
        assert not (tmp_path / "profile.json").exists()

    def test_profile_gave_up_exit_code(self, tmp_path):
        assert main(
            ["profile", "ring_modular", "--json", str(tmp_path / "p.json")]
        ) == 1
