"""CLI driver tests."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "exchange_with_root" in out

    def test_analyze_corpus_program(self, capsys):
        assert main(["exchange_with_root", "--np", "6"]) == 0
        out = capsys.readouterr().out
        assert "exchange-with-root" in out
        assert "MPI_Bcast" in out

    def test_analyze_file(self, tmp_path, capsys):
        source = tmp_path / "prog.mpl"
        source.write_text(
            "if id == 0 then send 1 -> 1 elif id == 1 then receive y <- 0 "
            "else skip end"
        )
        assert main([str(source), "--np", "4"]) == 0
        out = capsys.readouterr().out
        assert "communication topology" in out

    def test_bugs_flag(self, capsys):
        assert main(["message_leak", "--bugs"]) == 1
        assert "message leak" in capsys.readouterr().out

    def test_bugs_clean(self, capsys):
        assert main(["pingpong", "--bugs"]) == 0

    def test_constants_flag(self, capsys):
        assert main(["pingpong", "--constants"]) == 0
        out = capsys.readouterr().out
        assert "parallel=5" in out

    def test_gave_up_exit_code(self, capsys):
        assert main(["ring_modular", "--no-validate"]) == 1
        assert "gave up" in capsys.readouterr().out

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["no_such_program_xyz"])

    def test_no_target_prints_help(self, capsys):
        assert main([]) == 2

    def test_transpose_with_inputs(self, capsys):
        assert main(["transpose_square", "--np", "9", "--inputs", "3", "3"]) == 0
        out = capsys.readouterr().out
        assert "transpose" in out


class TestResilienceFlags:
    def test_degraded_run_prints_diagnostics(self, capsys):
        assert main(["ring_modular", "--no-validate"]) == 1
        out = capsys.readouterr().out
        assert "gave up" in out
        assert "confidence: partial" in out
        assert "GIVEUP_NO_MATCH" in out

    def test_fallback_reports_the_answering_rung(self, capsys):
        assert main(["ring_modular", "--no-validate", "--fallback"]) == 1
        out = capsys.readouterr().out
        assert "answer from rung: mpi-cfg" in out
        assert "rung cartesian: partial" in out

    def test_fallback_on_exact_program_exits_zero(self, capsys):
        assert main(["exchange_with_root", "--no-validate", "--fallback"]) == 0
        out = capsys.readouterr().out
        assert "answer from rung: cartesian" in out
        assert "communication topology" in out

    def test_strict_flag_still_exits_nonzero(self, capsys):
        assert main(["ring_modular", "--no-validate", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "gave up" in out
        assert "confidence: gave_up" in out

    def test_step_budget_flag(self, capsys):
        assert main(
            ["exchange_with_root", "--no-validate", "--max-steps", "3"]
        ) == 1
        out = capsys.readouterr().out
        assert "BUDGET_STEPS" in out

    def test_deadline_flag(self, capsys):
        assert main(
            ["exchange_with_root", "--no-validate", "--deadline", "0"]
        ) == 1
        assert "BUDGET_DEADLINE" in capsys.readouterr().out

    def test_malformed_cfg_is_one_line_error(self, capsys, monkeypatch):
        # force a structural error past the engine: break the CFG builder's
        # output before the engine sees it, via the bug-detector path which
        # re-raises through main()
        from repro.core.errors import MalformedCFG

        def boom(*args, **kwargs):
            raise MalformedCFG(7, "expected 1 unlabeled successor, found 0")

        monkeypatch.setattr("repro.cli.analyze_program", boom)
        assert main(["pingpong", "--no-validate"]) == 1
        err = capsys.readouterr().err
        assert err.strip() == (
            "error: malformed CFG: CFG node 7: expected 1 unlabeled "
            "successor, found 0"
        )

    def test_giveup_escaping_is_one_line_error(self, capsys, monkeypatch):
        from repro.core.errors import GiveUp

        def boom(*args, **kwargs):
            raise GiveUp("synthetic escape")

        monkeypatch.setattr("repro.cli.analyze_program", boom)
        assert main(["pingpong", "--no-validate"]) == 1
        err = capsys.readouterr().err
        assert err.strip() == "error: analysis gave up (T): synthetic escape"


class TestProfileSubcommand:
    def test_profile_corpus_program(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert main(["profile", "exchange_with_root", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Section IX cost profile" in out
        assert "closure share of total time" in out
        data = json.loads(out_path.read_text())
        assert data["program"] == "exchange_with_root"
        assert data["closure"]["full_calls"] > 0

    def test_profile_quickstart_program(self, tmp_path, capsys):
        from examples.quickstart import SOURCE

        source = tmp_path / "quickstart.mpl"
        source.write_text(SOURCE)
        assert main(["profile", str(source), "--no-json"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "engine.step" in out

    def test_profile_no_json_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", "pingpong", "--no-json"]) == 0
        assert not (tmp_path / "profile.json").exists()

    def test_profile_gave_up_exit_code(self, tmp_path):
        assert main(
            ["profile", "ring_modular", "--json", str(tmp_path / "p.json")]
        ) == 1

    def test_profile_exports_trace_and_journal(self, tmp_path, capsys):
        from repro.obs.export import read_journal, validate_chrome_trace

        trace = tmp_path / "trace.json"
        journal = tmp_path / "journal.jsonl"
        assert main(
            ["profile", "pingpong", "--no-json",
             "--trace", str(trace), "--journal", str(journal)]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote Chrome trace" in out
        validate_chrome_trace(json.loads(trace.read_text()))
        events = read_journal(journal)
        assert events and events[0].kind == "run_start"


class TestExplainSubcommand:
    def test_why_top_on_budget_tripped_run(self, capsys):
        """Acceptance: a degraded run names the originating event and its
        causal chain back to the run's start."""
        assert main(["explain", "pingpong", "--max-steps", "3", "--why-top"]) == 0
        out = capsys.readouterr().out
        assert "why-top: [BUDGET_STEPS]" in out
        assert "budget_trip" in out
        assert "run_start" in out  # the chain reaches the run's origin
        assert "#1 run_start" in out

    def test_why_top_on_degraded_giveup_run(self, capsys):
        assert main(["explain", "ring_modular", "--client", "simple-symbolic",
                     "--why-top"]) == 0
        out = capsys.readouterr().out
        assert "why-top: [GIVEUP_NO_MATCH]" in out
        assert "giveup" in out
        assert "run_start" in out

    def test_why_top_on_clean_run_exits_nonzero(self, capsys):
        assert main(["explain", "pingpong", "--why-top"]) == 1
        assert "nothing degraded" in capsys.readouterr().out

    def test_why_match_prints_match_chains(self, capsys):
        assert main(
            ["explain", "pingpong", "--client", "constprop", "--why-match"]
        ) == 0
        out = capsys.readouterr().out
        assert "why-match:" in out
        assert "match_attempt" in out or "match" in out
        assert "run_start" in out

    def test_why_match_without_communication(self, capsys):
        assert main(
            ["explain", "sequential_only", "--why-match"]
        ) == 1
        assert "no send-receive matching occurred" in capsys.readouterr().out

    def test_node_query_resolves_a_recorded_node(self, capsys):
        from repro.analyses.simple_symbolic import (
            SimpleSymbolicClient,
            analyze_program,
        )
        from repro.lang import programs
        from repro.obs import provenance

        # discover a node key the engine actually records, then ask the
        # CLI to derive it (the run is deterministic)
        with provenance.recording() as prov:
            analyze_program(programs.get("pingpong").parse(),
                            SimpleSymbolicClient())
        keyed = [e for e in prov.events() if e.node_key is not None]
        locs = keyed[-1].node_key[0]
        arg = ",".join(str(nid) for nid in locs)
        assert main(["explain", "pingpong", "--client", "simple-symbolic",
                     "--node", arg]) == 0
        out = capsys.readouterr().out
        assert f"node {tuple(locs)}: derivation" in out

    def test_node_query_unknown_location(self, capsys):
        assert main(["explain", "pingpong", "--node", "9999"]) == 1
        assert "no recorded events" in capsys.readouterr().out

    def test_node_query_malformed(self):
        with pytest.raises(SystemExit):
            main(["explain", "pingpong", "--node", "three"])

    def test_default_summary_lists_event_kinds(self, capsys):
        assert main(["explain", "pingpong"]) == 0
        out = capsys.readouterr().out
        assert "event kinds:" in out
        assert "transfer" in out
        assert "causal chain of the last event:" in out

    def test_explain_exports_trace_and_journal(self, tmp_path, capsys):
        from repro.obs.export import read_journal, validate_chrome_trace

        trace = tmp_path / "trace.json"
        journal = tmp_path / "journal.jsonl"
        assert main(
            ["explain", "pingpong", "--trace", str(trace),
             "--journal", str(journal)]
        ) == 0
        validate_chrome_trace(json.loads(trace.read_text()))
        ids = [e.event_id for e in read_journal(journal)]
        assert ids == sorted(ids) and ids  # complete, ordered journal

    def test_explain_capacity_spills_into_journal(self, tmp_path):
        from repro.obs.export import read_journal

        journal = tmp_path / "journal.jsonl"
        assert main(
            ["explain", "exchange_with_root", "--capacity", "16",
             "--journal", str(journal)]
        ) == 0
        ids = [e.event_id for e in read_journal(journal)]
        # evicted prefix spilled + live ring appended: gap-free history
        assert ids == list(range(1, len(ids) + 1))
        assert len(ids) > 16

    def test_explain_recorder_is_torn_down(self):
        from repro.obs import provenance

        assert main(["explain", "pingpong"]) == 0
        assert provenance.active() is None


class TestLogLevelFlag:
    def test_log_level_mirrors_driver_events_to_stderr(self, capsys):
        assert main(
            ["ring_modular", "--no-validate", "--fallback",
             "--log-level", "info"]
        ) == 1
        err = capsys.readouterr().err
        records = [json.loads(line) for line in err.splitlines() if line]
        events = [r["event"] for r in records]
        assert "driver.rung" in events
        assert "driver.chosen" in events
        rung = next(r for r in records if r["event"] == "driver.rung")
        assert {"name", "confidence", "matches"} <= set(rung)

    def test_engine_degradation_is_logged(self, capsys):
        assert main(
            ["pingpong", "--no-validate", "--max-steps", "3",
             "--log-level", "warning"]
        ) == 1
        err = capsys.readouterr().err
        records = [json.loads(line) for line in err.splitlines() if line]
        assert any(r["event"] == "engine.budget" for r in records)

    def test_repro_log_env_var(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "info")
        assert main(["ring_modular", "--no-validate", "--fallback"]) == 1
        err = capsys.readouterr().err
        assert any(
            json.loads(line)["event"] == "driver.chosen"
            for line in err.splitlines() if line
        )

    def test_quiet_by_default(self, capsys):
        assert main(["pingpong", "--no-validate"]) == 0
        assert capsys.readouterr().err == ""
