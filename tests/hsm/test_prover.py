"""Prover tests: the Section VIII-B identity and surjection proofs."""

import pytest

from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem
from repro.hsm.convert import expr_to_hsm, pset_to_hsm
from repro.hsm.hsm import HSM, enumerate_hsm
from repro.hsm.prover import HSMProver
from repro.lang.parser import parse_expr


def square_setup():
    inv = InvariantSystem()
    inv.add_equality("ncols", Poly.var("nrows"))
    inv.add_equality("np", Poly.var("nrows") * Poly.var("ncols"))
    inv.assume_positive("nrows", "ncols", "np")
    return inv, HSMProver(inv)


def rect_setup():
    inv = InvariantSystem()
    inv.add_equality("ncols", 2 * Poly.var("nrows"))
    inv.add_equality("np", Poly.var("nrows") * Poly.var("ncols"))
    inv.assume_positive("nrows", "ncols", "np")
    return inv, HSMProver(inv)


SQUARE_EXPR = "(id % nrows) * nrows + id / nrows"
RECT_EXPR = "2 * ((id / 2) % nrows) * nrows + (id / (2 * nrows)) * 2 + id % 2"


class TestSeqEqual:
    def test_identical(self):
        _, prover = square_setup()
        assert prover.seq_equal(HSM.of(0, 5, 1), HSM.of(0, 5, 1))

    def test_flattenable(self):
        _, prover = square_setup()
        nested = HSM.of(HSM.of(0, 3, 1), 2, 3)
        assert prover.seq_equal(nested, HSM.of(0, 6, 1))

    def test_different_sequences(self):
        _, prover = square_setup()
        assert not prover.seq_equal(HSM.of(0, 5, 1), HSM.of(1, 5, 1))

    def test_same_set_different_order_not_seq_equal(self):
        _, prover = square_setup()
        a = HSM.of(HSM.of(0, 2, 3), 3, 1)  # 0,3,1,4,2,5
        b = HSM.of(0, 6, 1)
        assert sorted(enumerate_hsm(a, {})) == enumerate_hsm(b, {})
        assert not prover.seq_equal(a, b)


class TestSetEqual:
    def test_swap_needed(self):
        _, prover = square_setup()
        a = HSM.of(HSM.of(0, 2, 3), 3, 1)
        b = HSM.of(0, 6, 1)
        assert prover.set_equal(a, b)

    def test_unequal_sets(self):
        _, prover = square_setup()
        assert not prover.set_equal(HSM.of(0, 4, 2), HSM.of(0, 4, 1))

    def test_length_mismatch_fails_fast(self):
        _, prover = square_setup()
        assert not prover.is_surjection_onto(HSM.of(0, 4, 1), HSM.of(0, 5, 1))


class TestSquareTranspose:
    """Section VIII-B, ncols == nrows."""

    def test_send_hsm_shape(self):
        inv, _ = square_setup()
        domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
        h = expr_to_hsm(parse_expr(SQUARE_EXPR), domain, inv)
        nrows = Poly.var("nrows")
        assert h == HSM.of(HSM.of(0, nrows, nrows), nrows, 1)

    def test_surjection(self):
        inv, prover = square_setup()
        domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
        h = expr_to_hsm(parse_expr(SQUARE_EXPR), domain, inv)
        assert prover.is_surjection_onto(h, domain)

    def test_identity_composition(self):
        inv, prover = square_setup()
        domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
        h = expr_to_hsm(parse_expr(SQUARE_EXPR), domain, inv)
        composed = expr_to_hsm(parse_expr(SQUARE_EXPR), h, inv)
        assert composed is not None
        assert prover.is_identity_on(composed, domain)

    @pytest.mark.parametrize("nrows", [2, 3, 4, 5])
    def test_concrete_agreement(self, nrows):
        inv, _ = square_setup()
        domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
        h = expr_to_hsm(parse_expr(SQUARE_EXPR), domain, inv)
        env = inv.sample_environment({"nrows": nrows})
        np_ = env["np"]
        expected = [(i % nrows) * nrows + i // nrows for i in range(np_)]
        assert enumerate_hsm(h, env) == expected


class TestRectTranspose:
    """Section VIII-B, ncols == 2 * nrows."""

    def test_send_hsm_shape(self):
        inv, _ = rect_setup()
        domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
        h = expr_to_hsm(parse_expr(RECT_EXPR), domain, inv)
        nrows = Poly.var("nrows")
        assert h == HSM.of(
            HSM.of(HSM.of(0, 2, 1), nrows, 2 * nrows), nrows, 2
        )

    def test_surjection(self):
        inv, prover = rect_setup()
        domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
        h = expr_to_hsm(parse_expr(RECT_EXPR), domain, inv)
        assert prover.is_surjection_onto(h, domain)

    def test_identity_composition(self):
        inv, prover = rect_setup()
        domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
        h = expr_to_hsm(parse_expr(RECT_EXPR), domain, inv)
        composed = expr_to_hsm(parse_expr(RECT_EXPR), h, inv)
        assert composed is not None
        assert prover.is_identity_on(composed, domain)

    @pytest.mark.parametrize("nrows", [2, 3, 4])
    def test_concrete_agreement(self, nrows):
        inv, _ = rect_setup()
        domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
        h = expr_to_hsm(parse_expr(RECT_EXPR), domain, inv)
        env = inv.sample_environment({"nrows": nrows})
        np_ = env["np"]
        expected = [
            2 * ((i // 2) % nrows) * nrows + (i // (2 * nrows)) * 2 + i % 2
            for i in range(np_)
        ]
        assert enumerate_hsm(h, env) == expected


class TestNegativeMatching:
    def test_wrong_expression_rejected(self):
        """An expression that is NOT an involution must fail the identity."""
        inv, prover = square_setup()
        domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
        # a plain row-major renumbering, not a transpose
        wrong = parse_expr("id / nrows + (id % nrows) * nrows + 1")
        h = expr_to_hsm(wrong, domain, inv)
        if h is not None:
            composed = expr_to_hsm(wrong, h, inv)
            assert composed is None or not prover.is_identity_on(composed, domain)

    def test_prover_statistics_collected(self):
        _, prover = square_setup()
        prover.set_equal(HSM.of(0, 4, 1), HSM.of(0, 4, 1))
        assert prover.explored_counts


class TestVerdictCache:
    def test_repeat_queries_hit_the_cache(self):
        from repro.obs import recorder as obs

        _, prover = square_setup()
        a = HSM.of(HSM.of(0, 2, 3), 3, 1)
        b = HSM.of(0, 6, 1)
        first = prover.set_equal(a, b)
        explored = len(prover.explored_counts)
        with obs.recording() as rec:
            assert prover.set_equal(a, b) == first
            counters = rec.snapshot()["counters"]
        assert counters.get("hsm.prove.cache_hits", 0) > 0
        # the cached verdict is answered without another search
        assert len(prover.explored_counts) == explored

    def test_cache_distinguishes_set_and_seq(self):
        _, prover = square_setup()
        a = HSM.of(HSM.of(0, 2, 3), 3, 1)
        b = HSM.of(0, 6, 1)
        assert not prover.seq_equal(a, b)
        assert prover.set_equal(a, b)
        assert not prover.seq_equal(a, b)
