"""Expression -> HSM conversion tests (Section VIII-A mechanization)."""

from hypothesis import given, settings, strategies as st

from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem
from repro.hsm.convert import expr_to_hsm, pset_to_hsm
from repro.hsm.hsm import enumerate_hsm
from repro.lang.parser import parse_expr


def plain_inv():
    inv = InvariantSystem()
    inv.assume_positive("nrows", "ncols", "np")
    inv.add_equality("np", Poly.var("nrows") * Poly.var("ncols"))
    return inv


class TestConversion:
    def test_id_is_domain(self):
        inv = plain_inv()
        domain = pset_to_hsm(Poly.const(0), Poly.const(6))
        h = expr_to_hsm(parse_expr("id"), domain, inv)
        assert enumerate_hsm(h, {}) == list(range(6))

    def test_constant_broadcast(self):
        inv = plain_inv()
        domain = pset_to_hsm(Poly.const(0), Poly.const(4))
        h = expr_to_hsm(parse_expr("7"), domain, inv)
        assert enumerate_hsm(h, {}) == [7, 7, 7, 7]

    def test_uniform_parameter_broadcast(self):
        inv = plain_inv()
        domain = pset_to_hsm(Poly.const(0), Poly.const(3))
        h = expr_to_hsm(parse_expr("nrows"), domain, inv)
        assert enumerate_hsm(h, {"nrows": 5}) == [5, 5, 5]

    def test_shift(self):
        inv = plain_inv()
        domain = pset_to_hsm(Poly.const(0), Poly.const(4))
        h = expr_to_hsm(parse_expr("id + 1"), domain, inv)
        assert enumerate_hsm(h, {}) == [1, 2, 3, 4]

    def test_subtraction(self):
        inv = plain_inv()
        domain = pset_to_hsm(Poly.const(2), Poly.const(4))
        h = expr_to_hsm(parse_expr("id - 2"), domain, inv)
        assert enumerate_hsm(h, {}) == [0, 1, 2, 3]

    def test_reverse_subtraction(self):
        inv = plain_inv()
        domain = pset_to_hsm(Poly.const(0), Poly.const(3))
        h = expr_to_hsm(parse_expr("10 - id"), domain, inv)
        assert enumerate_hsm(h, {}) == [10, 9, 8]

    def test_scaling(self):
        inv = plain_inv()
        domain = pset_to_hsm(Poly.const(0), Poly.const(3))
        h = expr_to_hsm(parse_expr("id * 4"), domain, inv)
        assert enumerate_hsm(h, {}) == [0, 4, 8]

    def test_hsm_times_hsm_unsupported(self):
        inv = plain_inv()
        domain = pset_to_hsm(Poly.const(0), Poly.const(3))
        assert expr_to_hsm(parse_expr("id * id"), domain, inv) is None

    def test_div_by_hsm_unsupported(self):
        inv = plain_inv()
        domain = pset_to_hsm(Poly.const(1), Poly.const(3))
        assert expr_to_hsm(parse_expr("6 / id"), domain, inv) is None

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 4))
    def test_combined_expression_concrete(self, a, b, q):
        inv = InvariantSystem()
        domain = pset_to_hsm(Poly.const(0), Poly.const(12))
        source = f"(id / {q}) * {a} + id % {q} + {b}"
        h = expr_to_hsm(parse_expr(source), domain, inv)
        if h is None:
            return
        expected = [(i // q) * a + i % q + b for i in range(12)]
        assert enumerate_hsm(h, {}) == expected
