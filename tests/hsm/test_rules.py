"""Rewrite-rule soundness: every rewrite preserves sequence/set semantics."""

from hypothesis import given, settings, strategies as st

from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem
from repro.hsm.hsm import HSM, HSMOps, enumerate_hsm
from repro.hsm.rules import seq_rewrites, set_rewrites


def make_ops():
    inv = InvariantSystem()
    inv.assume_positive("nrows")
    return HSMOps(inv)


def concrete_hsms():
    flat = st.builds(
        HSM.of, st.integers(0, 6), st.integers(1, 8), st.integers(0, 5)
    )
    nested = st.builds(
        HSM.of, flat, st.integers(1, 4), st.integers(0, 9)
    )
    return st.one_of(flat, nested)


class TestSequenceRules:
    def test_flatten_example(self):
        # [[2 : 3, 2] : 2, 6] -> [2 : 6, 2]
        ops = make_ops()
        h = HSM.of(HSM.of(2, 3, 2), 2, 6)
        rewrites = list(seq_rewrites(h, ops))
        assert any(r == HSM.of(2, 6, 2) for r in rewrites)

    def test_nest_example(self):
        ops = make_ops()
        h = HSM.of(2, 6, 2)
        rewrites = list(seq_rewrites(h, ops))
        assert any(
            enumerate_hsm(r, {}) == enumerate_hsm(h, {}) and r != h
            for r in rewrites
        )

    @settings(max_examples=60, deadline=None)
    @given(concrete_hsms())
    def test_all_seq_rewrites_preserve_sequence(self, h):
        ops = make_ops()
        reference = enumerate_hsm(h, {})
        for rewritten in seq_rewrites(h, ops):
            assert enumerate_hsm(rewritten, {}) == reference


class TestSetRules:
    def test_interleave_example(self):
        # [[2 : 3, 4] : 2, 2] = <2,6,10,4,8,12> ~ [2 : 6, 2]
        ops = make_ops()
        h = HSM.of(HSM.of(2, 3, 4), 2, 2)
        rewrites = list(set_rewrites(h, ops))
        assert any(r == HSM.of(2, 6, 2) for r in rewrites)

    def test_swap_example(self):
        # [[1 : 2, 1] : 3, 10] ~ [[1 : 3, 10] : 2, 1]
        ops = make_ops()
        h = HSM.of(HSM.of(1, 2, 1), 3, 10)
        swapped = HSM.of(HSM.of(1, 3, 10), 2, 1)
        assert any(r == swapped for r in set_rewrites(h, ops))
        assert sorted(enumerate_hsm(h, {})) == sorted(enumerate_hsm(swapped, {}))

    @settings(max_examples=60, deadline=None)
    @given(concrete_hsms())
    def test_all_set_rewrites_preserve_value_multiset(self, h):
        ops = make_ops()
        reference = sorted(enumerate_hsm(h, {}))
        for rewritten in set_rewrites(h, ops):
            assert sorted(enumerate_hsm(rewritten, {})) == reference


class TestSymbolicRules:
    def test_symbolic_flatten(self):
        inv = InvariantSystem()
        inv.assume_positive("nrows")
        ops = HSMOps(inv)
        nrows = Poly.var("nrows")
        h = HSM.of(HSM.of(0, nrows, 1), nrows, nrows)
        flat = ops.normalize(h)
        assert flat == HSM.of(0, nrows * nrows, 1)

    def test_symbolic_interleave(self):
        inv = InvariantSystem()
        inv.assume_positive("nrows")
        ops = HSMOps(inv)
        nrows = Poly.var("nrows")
        # [[e : nrows, 2*nrows] : nrows, 2] ~ [e : nrows^2, 2]
        h = HSM.of(HSM.of(0, nrows, 2 * nrows), nrows, 2)
        rewrites = list(set_rewrites(h, ops))
        target = HSM.of(0, nrows * nrows, 2)
        assert any(ops.equal(r, target) for r in rewrites)
