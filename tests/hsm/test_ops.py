"""HSM operation tests, validated against concrete enumeration.

Includes the paper's own worked examples:

* ``[12 : 15, 2] % 6  =  [[0 : 3, 2] : 5, 0]``  (modulus regrouping)
* ``[20 : 6, 5] / 10  =  [[2 : 2, 0] : 3, 1]``  (division regrouping)
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem
from repro.hsm.hsm import HSM, HSMOps, enumerate_hsm


@pytest.fixture
def ops():
    inv = InvariantSystem()
    inv.assume_positive("nrows", "ncols", "np")
    inv.add_equality("np", Poly.var("nrows") * Poly.var("ncols"))
    return HSMOps(inv)


def concrete(h, env=None):
    return enumerate_hsm(h, env or {})


class TestEnumeration:
    def test_flat_sequence(self):
        h = HSM.of(11, 4, 5)
        assert concrete(h) == [11, 16, 21, 26]

    def test_nested_sequence(self):
        # paper: [[0 : 10, 1] : 3, 100]
        h = HSM.of(HSM.of(0, 10, 1), 3, 100)
        seq = concrete(h)
        assert seq[:10] == list(range(10))
        assert seq[10:20] == list(range(100, 110))
        assert seq[20] == 200

    def test_symbolic_enumeration(self):
        h = HSM.of(0, Poly.var("nrows"), 1)
        assert concrete(h, {"nrows": 3}) == [0, 1, 2]


class TestNormalize:
    def test_unit_level_stripped(self, ops):
        h = HSM.of(HSM.of(2, 3, 1), 1, 99)
        assert ops.normalize(h) == HSM.of(2, 3, 1)

    def test_flatten(self, ops):
        # [[2 : 3, 2] : 2, 6] == [2 : 6, 2]
        h = HSM.of(HSM.of(2, 3, 2), 2, 6)
        assert ops.normalize(h) == HSM.of(2, 6, 2)
        assert concrete(h) == concrete(HSM.of(2, 6, 2))

    def test_zero_stride_collapse(self, ops):
        h = HSM.of(HSM.of(5, 2, 0), 3, 0)
        normal = ops.normalize(h)
        assert concrete(normal) == [5] * 6

    def test_length(self, ops):
        h = HSM.of(HSM.of(0, Poly.var("nrows"), 1), Poly.var("ncols"), 0)
        assert ops.length(h) == ops.inv.normalize(Poly.var("np"))


class TestMinMax:
    def test_min_max_flat(self, ops):
        h = HSM.of(3, 4, 5)
        assert ops.min_element(h) == Poly.const(3)
        assert ops.max_element(h) == Poly.const(18)

    def test_max_symbolic(self, ops):
        h = HSM.of(0, Poly.var("nrows"), 1)
        assert ops.max_element(h) == Poly.var("nrows") - 1

    def test_unknown_sign_stride(self, ops):
        h = HSM.of(0, 3, Poly.var("mystery"))
        assert ops.max_element(h) is None


class TestAdd:
    def test_add_same_shape(self, ops):
        a = HSM.of(0, 4, 1)
        b = HSM.of(10, 4, 2)
        result = ops.add(a, b)
        assert concrete(result) == [x + y for x, y in zip(concrete(a), concrete(b))]

    def test_add_scalar(self, ops):
        h = HSM.of(0, 3, 1)
        assert concrete(ops.add_scalar(h, Poly.const(5))) == [5, 6, 7]

    def test_add_requires_alignment(self, ops):
        # [0:4,1] + [[0:2,0]:2,10]: profiles (4) vs (2,2) -> split needed
        a = HSM.of(0, 4, 1)
        b = HSM.of(HSM.of(0, 2, 0), 2, 10)
        result = ops.add(a, b)
        assert result is not None
        assert concrete(result) == [x + y for x, y in zip(concrete(a), concrete(b))]

    def test_add_symbolic_alignment(self, ops):
        env = {"nrows": 3, "ncols": 3, "np": 9}
        a = HSM.of(0, ops.inv.normalize(Poly.var("np")), 1)
        b = HSM.of(HSM.of(0, Poly.var("nrows"), 0), Poly.var("ncols"), 7)
        result = ops.add(a, b)
        assert result is not None
        assert concrete(result, env) == [
            x + y for x, y in zip(concrete(a, env), concrete(b, env))
        ]

    def test_add_length_mismatch_fails(self, ops):
        assert ops.add(HSM.of(0, 3, 1), HSM.of(0, 4, 1)) is None


class TestMulScalar:
    def test_scalar_multiplication(self, ops):
        h = HSM.of(1, 3, 2)
        assert concrete(ops.mul_scalar(h, Poly.const(10))) == [10, 30, 50]

    def test_symbolic_scalar(self, ops):
        h = HSM.of(0, 3, 1)
        result = ops.mul_scalar(h, Poly.var("nrows"))
        assert concrete(result, {"nrows": 4}) == [0, 4, 8]


class TestDiv:
    def test_paper_division_example(self, ops):
        # [20, 25, 30, 35, 40, 45] / 10 = [2, 2, 3, 3, 4, 4]
        h = HSM.of(20, 6, 5)
        result = ops.div(h, Poly.const(10))
        assert result is not None
        assert concrete(result) == [2, 2, 3, 3, 4, 4]

    def test_divisible_stride(self, ops):
        h = HSM.of(0, 5, 10)
        result = ops.div(h, Poly.const(10))
        assert concrete(result) == [0, 1, 2, 3, 4]

    def test_block_constant(self, ops):
        h = HSM.of(0, 3, 1)
        result = ops.div(h, Poly.const(5))
        assert concrete(result) == [0, 0, 0]

    def test_id_div_nrows(self, ops):
        # [0 : np, 1] / nrows = [[0 : nrows, 0] : ncols, 1]
        h = HSM.of(0, ops.inv.normalize(Poly.var("np")), 1)
        result = ops.div(h, Poly.var("nrows"))
        assert result is not None
        env = {"nrows": 3, "ncols": 4, "np": 12}
        assert concrete(result, env) == [i // 3 for i in range(12)]

    def test_unprovable_returns_none(self, ops):
        h = HSM.of(0, Poly.var("mystery"), 1)
        assert ops.div(h, Poly.var("nrows")) is None

    def test_div_by_one(self, ops):
        h = HSM.of(3, 4, 2)
        assert ops.div(h, Poly.const(1)) == h

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 12), st.integers(1, 6), st.integers(0, 6), st.integers(1, 8)
    )
    def test_div_sound_when_defined(self, start, rep, stride, q):
        inv = InvariantSystem()
        ops = HSMOps(inv)
        h = HSM.of(start, rep, stride)
        result = ops.div(h, Poly.const(q))
        if result is not None:
            assert concrete(result) == [v // q for v in concrete(h)]


class TestMod:
    def test_paper_modulus_example(self, ops):
        # [12 : 15, 2] % 6 = <0,2,4> repeated 5 times
        h = HSM.of(12, 15, 2)
        result = ops.mod(h, Poly.const(6))
        assert result is not None
        assert concrete(result) == [0, 2, 4] * 5

    def test_divisible_base(self, ops):
        h = HSM.of(0, 4, 6)
        assert concrete(ops.mod(h, Poly.const(6))) == [0, 0, 0, 0]

    def test_contained(self, ops):
        h = HSM.of(1, 3, 1)
        assert concrete(ops.mod(h, Poly.const(10))) == [1, 2, 3]

    def test_id_mod_nrows(self, ops):
        h = HSM.of(0, ops.inv.normalize(Poly.var("np")), 1)
        result = ops.mod(h, Poly.var("nrows"))
        assert result is not None
        env = {"nrows": 3, "ncols": 4, "np": 12}
        assert concrete(result, env) == [i % 3 for i in range(12)]

    def test_mod_by_one_is_zero(self, ops):
        h = HSM.of(5, 3, 2)
        assert concrete(ops.mod(h, Poly.const(1))) == [0, 0, 0]

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 12), st.integers(1, 6), st.integers(0, 6), st.integers(1, 8)
    )
    def test_mod_sound_when_defined(self, start, rep, stride, q):
        inv = InvariantSystem()
        ops = HSMOps(inv)
        h = HSM.of(start, rep, stride)
        result = ops.mod(h, Poly.const(q))
        if result is not None:
            assert concrete(result) == [v % q for v in concrete(h)]
