"""Worklist solver and lattice tests."""

from hypothesis import given, strategies as st

from repro.dataflow.lattice import BOTTOM, TOP, FlatLattice, SetLattice
from repro.dataflow.solver import DataflowProblem, solve_forward
from repro.lang import build_cfg, parse
from repro.lang.cfg import CFGNode, NodeKind


class TestFlatLattice:
    def setup_method(self):
        self.lattice = FlatLattice()

    def test_bottom_identity(self):
        assert self.lattice.join(BOTTOM, 5) == 5
        assert self.lattice.join(5, BOTTOM) == 5

    def test_top_absorbs(self):
        assert self.lattice.join(TOP, 5) is TOP

    def test_conflict_goes_top(self):
        assert self.lattice.join(1, 2) is TOP

    def test_same_value(self):
        assert self.lattice.join(3, 3) == 3

    @given(st.sampled_from([BOTTOM, TOP, 0, 1, 2]),
           st.sampled_from([BOTTOM, TOP, 0, 1, 2]),
           st.sampled_from([BOTTOM, TOP, 0, 1, 2]))
    def test_associative(self, a, b, c):
        lat = FlatLattice()
        assert lat.join(lat.join(a, b), c) == lat.join(a, lat.join(b, c))


class TestSetLattice:
    def test_join_is_union(self):
        lat = SetLattice()
        assert lat.join(frozenset({1}), frozenset({2})) == frozenset({1, 2})

    def test_leq_is_subset(self):
        lat = SetLattice()
        assert lat.leq(frozenset(), frozenset({1}))
        assert not lat.leq(frozenset({2}), frozenset({1}))


class _CollectNodes(DataflowProblem):
    """Toy problem: collect the set of node ids seen on some path."""

    def __init__(self):
        super().__init__(SetLattice())

    def entry_state(self):
        return frozenset()

    def transfer(self, node: CFGNode, state):
        return state | {node.node_id}


class TestSolver:
    def test_reaches_fixpoint_on_loop(self):
        cfg = build_cfg(parse("while x > 0 do x = x - 1 end print x"))
        states = solve_forward(cfg, _CollectNodes())
        # the exit node's in-state contains the loop body node
        branch = next(
            n.node_id for n in cfg.nodes.values() if n.kind == NodeKind.BRANCH
        )
        assert branch in states[cfg.exit]

    def test_straightline_accumulates(self):
        cfg = build_cfg(parse("x = 1 y = 2"))
        states = solve_forward(cfg, _CollectNodes())
        assert len(states[cfg.exit]) >= 3

    def test_branch_joins_paths(self):
        cfg = build_cfg(parse("if x == 0 then y = 1 else y = 2 end print y"))
        states = solve_forward(cfg, _CollectNodes())
        assigns = [
            n.node_id for n in cfg.nodes.values() if n.kind == NodeKind.ASSIGN
        ]
        for node_id in assigns:
            assert node_id in states[cfg.exit]
