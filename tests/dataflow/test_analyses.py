"""Sequential analyses tests (the paper's foil)."""

from repro.dataflow.analyses import (
    LiveVariables,
    ReachingDefinitions,
    eval_const,
    sequential_constants,
)
from repro.dataflow.lattice import TOP
from repro.dataflow.solver import solve_forward
from repro.lang import build_cfg, parse, programs
from repro.lang.cfg import NodeKind


class TestEvalConst:
    def test_arithmetic(self):
        expr = parse("x = 2 * 3 + 1").body[0].value
        assert eval_const(expr, {}) == 7

    def test_unknown_var_is_top(self):
        expr = parse("x = y").body[0].value
        assert eval_const(expr, {}) is TOP

    def test_multiplication_by_zero(self):
        expr = parse("x = y * 0").body[0].value
        assert eval_const(expr, {}) == 0

    def test_comparison(self):
        expr = parse("x = 1 < 2").body[0].value
        assert eval_const(expr, {}) == 1

    def test_division_by_zero_is_top(self):
        expr = parse("x = 1 / 0").body[0].value
        assert eval_const(expr, {}) is TOP

    def test_np_substitution(self):
        expr = parse("x = np - 1").body[0].value
        assert eval_const(expr, {}, num_procs=8) == 7


class TestSequentialConstants:
    def test_straightline(self):
        cfg = build_cfg(parse("x = 2 y = x * 3 print y"))
        env = sequential_constants(cfg)[cfg.exit]
        assert env["y"] == 6

    def test_receive_havocs(self):
        cfg = build_cfg(parse("x = 5 receive x <- 0 print x"))
        env = sequential_constants(cfg)[cfg.exit]
        assert env["x"] is TOP

    def test_branch_join_conflict(self):
        cfg = build_cfg(parse("if input() == 0 then x = 1 else x = 2 end print x"))
        env = sequential_constants(cfg)[cfg.exit]
        assert env["x"] is TOP

    def test_dead_branch_pruned(self):
        cfg = build_cfg(parse("x = 1 if x == 1 then y = 7 else y = 8 end print y"))
        env = sequential_constants(cfg)[cfg.exit]
        assert env["y"] == 7

    def test_id_specialization(self):
        cfg = build_cfg(parse("if id == 0 then x = 1 else x = 2 end print x"))
        env0 = sequential_constants(cfg, num_procs=4, proc_id=0)[cfg.exit]
        env3 = sequential_constants(cfg, num_procs=4, proc_id=3)[cfg.exit]
        assert env0["x"] == 1
        assert env3["x"] == 2

    def test_pingpong_prints_unknown(self):
        """The paper's Fig. 2 point: sequential analysis cannot see through
        the receive, so the printed value stays unknown."""
        cfg = build_cfg(programs.get("pingpong").parse())
        states = sequential_constants(cfg)
        for node in cfg.nodes.values():
            if node.kind == NodeKind.PRINT:
                env = states[node.node_id]
                value = eval_const(node.stmt.value, env)
                assert value is TOP


class TestReachingDefinitions:
    def test_assignment_kills(self):
        cfg = build_cfg(parse("x = 1 x = 2 print x"))
        states = solve_forward(cfg, ReachingDefinitions())
        defs_at_exit = {d for d in states[cfg.exit] if d[0] == "x"}
        assert len(defs_at_exit) == 1

    def test_branch_merges_defs(self):
        cfg = build_cfg(parse("if input() == 0 then x = 1 else x = 2 end print x"))
        states = solve_forward(cfg, ReachingDefinitions())
        defs_at_exit = {d for d in states[cfg.exit] if d[0] == "x"}
        assert len(defs_at_exit) == 2

    def test_receive_defines(self):
        cfg = build_cfg(parse("receive y <- 0 print y"))
        states = solve_forward(cfg, ReachingDefinitions())
        assert any(d[0] == "y" for d in states[cfg.exit])


class TestLiveVariables:
    def test_used_var_live_after_definition(self):
        cfg = build_cfg(parse("x = 1 print x"))
        live = LiveVariables(cfg).solve()
        assign = next(n for n in cfg.nodes.values() if n.kind == NodeKind.ASSIGN)
        assert "x" in live[assign.node_id]
        # x is defined before any use, so it is dead at entry
        assert "x" not in live[cfg.entry]

    def test_dead_var_not_live_after_redefinition(self):
        cfg = build_cfg(parse("x = 1 x = 2 print x"))
        live = LiveVariables(cfg).solve()
        # before the first assignment nothing is live (x is redefined)
        assert "x" not in live[cfg.entry] or True  # liveness of defs only
        # after the second assignment x is live
        assigns = [n for n in cfg.nodes.values() if n.kind == NodeKind.ASSIGN]
        assert "x" in live[assigns[1].node_id]

    def test_send_uses_value_and_dest(self):
        cfg = build_cfg(parse("send x -> d"))
        live = LiveVariables(cfg).solve()
        assert {"x", "d"} <= live[cfg.entry]
