"""pCFG engine behaviour tests."""

from repro.analyses.simple_symbolic import SimpleSymbolicClient, analyze_program
from repro.core.engine import EngineLimits
from repro.lang import programs
from repro.lang.cfg import NodeKind


class TestBasicRuns:
    def test_sequential_program_no_matches(self):
        result, _, _ = analyze_program(programs.get("sequential_only"))
        assert not result.gave_up
        assert result.matches == frozenset()
        assert result.final_states

    def test_pingpong_matches_both_directions(self, pingpong_cfg):
        result, cfg, _ = analyze_program(programs.get("pingpong"))
        assert not result.gave_up
        assert len(result.matches) == 2
        labels = {
            (cfg.node(s).label, cfg.node(r).label) for s, r in result.matches
        }
        # one send from process 0's branch, one from process 1's branch
        assert len(labels) == 2

    def test_match_records_symbolic_descriptions(self):
        result, _, _ = analyze_program(programs.get("pingpong"))
        descs = {(r.sender_desc, r.receiver_desc) for r in result.match_records}
        assert ("[0..0]", "[1..1]") in descs
        assert ("[1..1]", "[0..0]") in descs

    def test_steps_counted(self):
        result, _, _ = analyze_program(programs.get("pingpong"))
        assert result.steps > 0


class TestGiveUp:
    def test_stuck_receive_gives_up(self):
        result, cfg, _ = analyze_program(programs.get("stuck_receive"))
        assert result.gave_up
        assert result.blocked_at_giveup
        node_id, desc = result.blocked_at_giveup[0]
        assert cfg.node(node_id).kind == NodeKind.RECV
        assert "[0..0]" in desc

    def test_ring_modular_gives_up_conservatively(self):
        """Modular expressions exceed both clients: T, never wrong matches."""
        result, _, _ = analyze_program(programs.get("ring_modular"))
        assert result.gave_up

    def test_step_limit(self):
        limits = EngineLimits(max_steps=3)
        result, _, _ = analyze_program(programs.get("exchange_with_root"), limits=limits)
        assert result.gave_up
        assert "step limit" in result.give_up_reason

    def test_max_psets_limit(self):
        limits = EngineLimits(max_psets=1)
        result, _, _ = analyze_program(programs.get("pingpong"), limits=limits)
        assert result.gave_up


class TestExploredPCFG:
    def test_fraction_of_pcfg_is_small(self):
        """Section V: the analysis examines a small fraction of the pCFG.

        An upper bound on distinct location-tuples alone is |N|^p; the
        explored node count must be dramatically smaller.
        """
        result, cfg, _ = analyze_program(programs.get("exchange_with_root"))
        explored = result.explored.node_count()
        assert explored < 4 * len(cfg.nodes)

    def test_edges_recorded_with_kinds(self):
        result, _, _ = analyze_program(programs.get("pingpong"))
        kinds = {edge.kind for edge in result.explored.edges}
        assert "split" in kinds
        assert "match" in kinds
        assert "transfer" in kinds

    def test_entry_recorded(self):
        result, _, _ = analyze_program(programs.get("pingpong"))
        assert result.explored.entry is not None

    def test_dot_rendering(self):
        result, cfg, _ = analyze_program(programs.get("pingpong"))
        dot = result.explored.to_dot(cfg)
        assert dot.startswith("digraph")
        assert "match" in dot


class TestNodeStates:
    def test_loop_invariant_reaches_symbolic_form(self):
        """The Fig. 5 widening: some pCFG node holds the process sets
        {[0], [1..i]-style, [i+1..np-1]-style} with symbolic i bounds."""
        client = SimpleSymbolicClient()
        result, cfg, _ = analyze_program(
            programs.get("exchange_with_root"), client
        )
        symbolic_states = 0
        for key, state in result.node_states.items():
            for entry in state.psets:
                text = str(entry.pset)
                if "::i" in text:
                    symbolic_states += 1
                    break
        assert symbolic_states > 0

    def test_final_states_have_merged_everyone(self):
        client = SimpleSymbolicClient()
        result, _, _ = analyze_program(programs.get("pingpong"), client)
        assert result.final_states
        # at termination everyone is at the exit: one merged pset remains
        for state in result.final_states:
            assert client.num_psets(state) == 1
