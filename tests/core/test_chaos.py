"""Fault-injection tests: the engine survives a hostile client.

Run explicitly with ``pytest tests/core/test_chaos.py -m chaos``; the
``chaos`` marker keeps these out of the default tier-1 run.  The fault
schedule is fully determined by ``CHAOS_SEED`` (env var, default 1337) —
every assertion message carries the offending seed so CI failures
reproduce locally with ``CHAOS_SEED=<seed> pytest ... -m chaos``.

Soundness under faults: an injected fault can only *remove* behavior from
the exploration (a node falls to ``T`` instead of producing successors),
never add it, so for a program whose clean run is ``exact`` the degraded
match relation must be a subset of the clean one.  (For programs whose
clean run already degrades, the subset property is NOT a theorem —
pruning a join input can leave a *narrower* state downstream that proves
a match the clean run's wider state cannot — so those only get the
termination/no-crash guarantee.)
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.core import diagnostics
from repro.core.diagnostics import CLIENT_FAULT
from repro.core.engine import EngineLimits, PCFGEngine
from repro.core.shard import ShardedEngine
from repro.lang import programs
from repro.lang.cfg import build_cfg
from repro.obs import provenance
from tests.core.chaos import ChaosClient, default_seed

pytestmark = pytest.mark.chaos

CHAOS_SEED = default_seed()

#: full corpus: every program must survive chaos without an exception
CORPUS = [spec.name for spec in programs.all_specs()]

#: programs whose clean simple-symbolic run is exact (subset property holds)
CLEAN_EXACT = [
    "broadcast_fanout",
    "exchange_with_root",
    "gather_to_root",
    "master_worker",
    "mdcask_full",
    "message_leak",
    "pingpong",
    "pipeline_stages",
    "ring_shift_nowrap",
    "scatter_from_root",
    "sequential_only",
    "shift_right",
    "type_mismatch",
]

_CLEAN_CACHE = {}


def clean_run(name):
    if name not in _CLEAN_CACHE:
        program = programs.get(name).parse()
        cfg = build_cfg(program)
        result = PCFGEngine(cfg, SimpleSymbolicClient()).run()
        _CLEAN_CACHE[name] = result
    return _CLEAN_CACHE[name]


def chaos_run(name, seed, fault_rate=0.08, strict=False, only=None, jobs=1):
    program = programs.get(name).parse()
    cfg = build_cfg(program)
    client = ChaosClient(
        SimpleSymbolicClient(), seed=seed, fault_rate=fault_rate, only=only
    )
    limits = EngineLimits(max_steps=2_000, strict=strict)
    if jobs > 1:
        result = ShardedEngine(cfg, client, limits, jobs=jobs).run()
    else:
        result = PCFGEngine(cfg, client, limits).run()
    return result, client


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_chaos_seed_sweep_never_crashes(jobs):
    """No (program, seed, worker count) combination makes run() raise — ever.

    With ``jobs > 1`` the faults fire inside pool workers (each worker's
    ChaosClient replays its own schedule) and the parent must contain
    whatever comes back — including states the codec refuses to ship.
    The parent's ``client.log`` stays empty in that case (the injections
    happened in other processes), so the admits-its-faults assertion only
    applies to the in-process run.
    """
    crashes = []
    for name in CORPUS:
        for offset in range(8):
            seed = CHAOS_SEED + offset
            try:
                result, client = chaos_run(name, seed, jobs=jobs)
            except BaseException as exc:  # noqa: BLE001 - the point of the test
                crashes.append((name, seed, repr(exc)))
                continue
            assert result.confidence in (
                diagnostics.EXACT,
                diagnostics.PARTIAL,
                diagnostics.GAVE_UP,
            ), f"CHAOS_SEED={seed} program={name} jobs={jobs}: bad confidence"
            if jobs == 1 and client.log:
                # at least one injected fault: the result must admit it
                assert result.diagnostics, (
                    f"CHAOS_SEED={seed} program={name}: faults injected "
                    f"{client.log} but result claims no diagnostics"
                )
    assert not crashes, (
        f"engine crashed (CHAOS_SEED base {CHAOS_SEED}, jobs={jobs}): {crashes}"
    )


def test_chaos_faults_become_client_fault_diagnostics():
    """Raised injections surface as CLIENT_FAULT with the callback named."""
    seen_callbacks = set()
    for offset in range(16):
        seed = CHAOS_SEED + offset
        result, client = chaos_run("exchange_with_root", seed, fault_rate=0.2)
        raised = [cb for cb, kind in client.log]
        if not raised:
            continue
        faults = [d for d in result.diagnostics if d.code == CLIENT_FAULT]
        assert faults, (
            f"CHAOS_SEED={seed}: injected {client.log} but no "
            f"CLIENT_FAULT diagnostic"
        )
        seen_callbacks.update(d.callback for d in faults if d.callback)
    # the sweep must actually have exercised the guard on real callbacks
    assert seen_callbacks, "no fault ever injected across the sweep"


@settings(
    derandomize=True,
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    name=st.sampled_from(CLEAN_EXACT),
)
def test_chaos_matches_subset_of_clean(seed, name):
    """Soundness under faults: degraded matches never exceed the clean set."""
    clean = clean_run(name)
    assert clean.confidence == diagnostics.EXACT, (
        f"{name} is no longer clean-exact; update CLEAN_EXACT"
    )
    result, client = chaos_run(name, seed)
    assert set(result.matches) <= set(clean.matches), (
        f"CHAOS_SEED={seed} program={name}: degraded run invented matches "
        f"{set(result.matches) - set(clean.matches)} (faults: {client.log})"
    )
    if not client.log:
        # no fault fired: the run must be byte-for-byte as good as clean
        assert result.confidence == diagnostics.EXACT
        assert set(result.matches) == set(clean.matches)


def test_chaos_fault_in_initial_gives_up_cleanly():
    """A fault on the very first callback yields gave_up, not a traceback."""
    hit = False
    for offset in range(64):
        seed = CHAOS_SEED + offset
        result, client = chaos_run(
            "pingpong", seed, fault_rate=1.0, only=["initial"]
        )
        assert result.confidence == diagnostics.GAVE_UP, (
            f"CHAOS_SEED={seed}: expected gave_up, got {result.confidence}"
        )
        assert result.gave_up
        assert result.diagnostics
        hit = True
        break
    assert hit


def test_chaos_strict_mode_aborts_on_first_fault():
    """strict=True turns the first injected fault into a global abort."""
    for offset in range(32):
        seed = CHAOS_SEED + offset
        result, client = chaos_run(
            "exchange_with_root", seed, fault_rate=0.3, strict=True
        )
        if not client.log:
            assert result.confidence == diagnostics.EXACT
            continue
        assert result.confidence == diagnostics.GAVE_UP, (
            f"CHAOS_SEED={seed}: strict run degraded instead of aborting"
        )
        # abort-on-first: exactly one diagnostic, nothing localized
        assert len(result.diagnostics) == 1
        assert not result.top_nodes
        return
    pytest.fail("no fault injected across 32 seeds; raise fault_rate")


def test_chaos_diagnostics_carry_resolvable_provenance():
    """Under provenance, every chaos diagnostic names its originating event.

    The flight recorder must keep working while the client actively
    misbehaves: each diagnostic's ``provenance_id`` resolves to a recorded
    event of a degradation kind whose causal chain reaches the run's start.
    """
    degradation_kinds = {
        "giveup", "client_fault", "cfg_malformed", "budget_trip",
        "checkpoint_rejected",
    }
    checked = 0
    for name in ("exchange_with_root", "pingpong", "ring_modular"):
        for offset in range(8):
            seed = CHAOS_SEED + offset
            with provenance.recording() as prov:
                result, client = chaos_run(name, seed, fault_rate=0.2)
            for diag in result.diagnostics:
                assert diag.provenance_id is not None, (
                    f"CHAOS_SEED={seed} program={name}: diagnostic "
                    f"{diag.code} has no provenance_id (faults: {client.log})"
                )
                event = prov.get(diag.provenance_id)
                assert event is not None, (
                    f"CHAOS_SEED={seed} program={name}: provenance_id "
                    f"{diag.provenance_id} does not resolve"
                )
                assert event.kind in degradation_kinds, (
                    f"CHAOS_SEED={seed} program={name}: {diag.code} links "
                    f"to a {event.kind!r} event"
                )
                chain = prov.chain(event.event_id)
                assert chain[0].kind == "run_start", (
                    f"CHAOS_SEED={seed} program={name}: causal chain of "
                    f"{diag.code} does not reach run_start"
                )
                checked += 1
    assert checked, "no diagnostics produced across the provenance sweep"


def test_chaos_corrupted_state_is_contained():
    """CorruptedState damage surfaces later but still lands in diagnostics."""
    corrupted_seen = False
    for offset in range(64):
        seed = CHAOS_SEED + offset
        result, client = chaos_run(
            "exchange_with_root", seed, fault_rate=0.15
        )
        if any(kind == "corrupt" for _, kind in client.log):
            corrupted_seen = True
            assert result.diagnostics, (
                f"CHAOS_SEED={seed}: corruption injected but no diagnostics"
            )
    assert corrupted_seen, "no corruption injected across the sweep"
