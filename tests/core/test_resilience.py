"""The resilience layer: localized T, fault isolation, budgets, strict mode."""

from __future__ import annotations

import pytest

from repro import obs
from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.core import diagnostics
from repro.core.engine import AnalysisResult, EngineLimits, PCFGEngine
from repro.core.errors import GiveUp, MalformedCFG
from repro.lang import parse, programs
from repro.lang.cfg import NodeKind, build_cfg

#: one branch arm blocks forever (proc 2 awaits a send that never comes);
#: the 0 -> 1 exchange is provable and must survive the localized T
MIXED_SOURCE = """
    if id == 0 then
        x = 1
        send x -> 1
    elif id == 1 then
        receive y <- 0
    elif id == 2 then
        receive z <- 3
    else
        skip
    end
"""


def run_source(source, client=None, limits=None):
    program = parse(source)
    cfg = build_cfg(program)
    client = client or SimpleSymbolicClient()
    return PCFGEngine(cfg, client, limits).run(), cfg, client


def run_corpus(name, client=None, limits=None):
    spec = programs.get(name)
    return run_source(spec.source, client, limits)


# -- localized T degradation ---------------------------------------------------


def test_localized_giveup_keeps_sound_partial_topology():
    result, _cfg, _client = run_source(MIXED_SOURCE)
    assert result.confidence == diagnostics.PARTIAL
    assert result.gave_up  # backward-compatible summary bit
    assert result.top_nodes, "the blocked configuration must be marked T"
    codes = [diag.code for diag in result.diagnostics]
    assert diagnostics.GIVEUP_NO_MATCH in codes
    # the provable half of the program survives degradation
    assert len(result.matches) == 1
    (match,) = result.match_records
    assert match.sender_desc == "[0..0]"
    assert match.receiver_desc == "[1..1]"
    # the no-match diagnostic carries the blocked sets for the bug detectors
    no_match = next(
        diag for diag in result.diagnostics
        if diag.code == diagnostics.GIVEUP_NO_MATCH
    )
    assert no_match.blocked
    assert no_match.node_key is not None
    assert result.blocked_at_giveup  # legacy surface still populated


def test_strict_mode_preserves_abort_on_first_failure():
    result, _cfg, _client = run_source(
        MIXED_SOURCE, limits=EngineLimits(strict=True)
    )
    assert result.confidence == diagnostics.GAVE_UP
    assert result.gave_up
    assert len(result.diagnostics) == 1
    assert not result.top_nodes  # nothing was localized: the run aborted


def test_exact_result_has_no_diagnostics():
    result, _cfg, _client = run_corpus("pingpong")
    assert result.confidence == diagnostics.EXACT
    assert not result.gave_up
    assert result.diagnostics == []
    assert result.top_nodes == set()


# -- satellite: entry-state failures must not escape run() ---------------------


class GiveUpOnIsEmpty(SimpleSymbolicClient):
    def is_empty(self, state, pos):
        raise GiveUp("injected entry-state give-up")


class GiveUpOnJoin(SimpleSymbolicClient):
    def join(self, old, new):
        raise GiveUp("injected join give-up")


def test_giveup_from_is_empty_on_initial_state_is_caught():
    # regression: entry canonicalization used to sit outside the try blocks,
    # so this raised straight through run()
    result, _cfg, _client = run_corpus("pingpong", client=GiveUpOnIsEmpty())
    assert isinstance(result, AnalysisResult)
    assert result.confidence == diagnostics.GAVE_UP
    assert result.gave_up
    assert "entry-state give-up" in result.give_up_reason


def test_giveup_from_join_never_escapes_run():
    result, _cfg, _client = run_corpus(
        "exchange_with_root", client=GiveUpOnJoin()
    )
    assert isinstance(result, AnalysisResult)
    assert result.gave_up


# -- client fault isolation ----------------------------------------------------


class FaultyTransfer(SimpleSymbolicClient):
    """Raises an arbitrary exception on the Nth transfer call."""

    def __init__(self, fail_on=2, **kwargs):
        super().__init__(**kwargs)
        self.fail_on = fail_on
        self.calls = 0

    def transfer(self, state, pos, node):
        self.calls += 1
        if self.calls == self.fail_on:
            raise ValueError("client bug: transfer exploded")
        return super().transfer(state, pos, node)


def test_client_fault_is_isolated_to_one_node():
    with obs.recording() as rec:
        result, _cfg, _client = run_corpus("pingpong", client=FaultyTransfer())
    assert result.confidence in (diagnostics.PARTIAL, diagnostics.GAVE_UP)
    fault = next(
        diag for diag in result.diagnostics
        if diag.code == diagnostics.CLIENT_FAULT
    )
    assert fault.callback == "transfer"
    assert "transfer exploded" in fault.message
    assert result.top_nodes
    counters = rec.snapshot()["counters"]
    assert counters.get("engine.recover.client_fault", 0) >= 1
    assert counters.get("engine.recover.local_top", 0) >= 1


def test_client_fault_in_strict_mode_aborts():
    result, _cfg, _client = run_corpus(
        "pingpong", client=FaultyTransfer(), limits=EngineLimits(strict=True)
    )
    assert result.confidence == diagnostics.GAVE_UP
    assert result.diagnostics[0].code == diagnostics.CLIENT_FAULT


def test_keyboard_interrupt_is_not_swallowed():
    class Interrupting(SimpleSymbolicClient):
        def transfer(self, state, pos, node):
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_corpus("pingpong", client=Interrupting())


# -- satellite: malformed CFGs -------------------------------------------------


def test_malformed_cfg_becomes_diagnostic_not_traceback():
    program = programs.get("pingpong").parse()
    cfg = build_cfg(program)
    assign = next(
        n.node_id for n in cfg.nodes.values() if n.kind == NodeKind.ASSIGN
    )
    cfg.edges[assign] = []  # sever the assign node's fallthrough edge
    result = PCFGEngine(cfg, SimpleSymbolicClient()).run()
    malformed = next(
        diag for diag in result.diagnostics
        if diag.code == diagnostics.CFG_MALFORMED
    )
    assert f"CFG node {assign}" in malformed.message
    assert result.confidence in (diagnostics.PARTIAL, diagnostics.GAVE_UP)


def test_single_successor_raises_structured_error():
    program = programs.get("pingpong").parse()
    cfg = build_cfg(program)
    assign = next(
        n.node_id for n in cfg.nodes.values() if n.kind == NodeKind.ASSIGN
    )
    cfg.edges[assign] = []
    engine = PCFGEngine(cfg, SimpleSymbolicClient())
    with pytest.raises(MalformedCFG) as excinfo:
        engine._single_successor(assign)
    assert excinfo.value.node_id == assign
    assert "expected 1 unlabeled successor" in str(excinfo.value)


# -- resource budgets ----------------------------------------------------------


def test_deadline_budget_ends_run_as_partial():
    result, _cfg, _client = run_corpus(
        "exchange_with_root", limits=EngineLimits(deadline_sec=0.0)
    )
    assert result.confidence == diagnostics.PARTIAL
    (diag,) = [
        d for d in result.diagnostics if d.code == diagnostics.BUDGET_DEADLINE
    ]
    assert diag.severity == diagnostics.WARNING
    assert result.gave_up


def test_memory_budget_ends_run_as_partial():
    result, _cfg, _client = run_corpus(
        "exchange_with_root",
        limits=EngineLimits(max_state_bytes=1, memory_check_every=1),
    )
    assert result.confidence == diagnostics.PARTIAL
    codes = [d.code for d in result.diagnostics]
    assert diagnostics.BUDGET_MEMORY in codes


def test_budgets_never_raise_with_tiny_everything():
    limits = EngineLimits(
        max_steps=1, deadline_sec=0.0, max_state_bytes=1, memory_check_every=1
    )
    for name in ("pingpong", "exchange_with_root", "ring_modular"):
        result, _cfg, _client = run_corpus(name, limits=limits)
        assert isinstance(result, AnalysisResult)
        assert result.confidence in (diagnostics.PARTIAL, diagnostics.EXACT)


def test_budget_counters_are_recorded():
    with obs.recording() as rec:
        run_corpus("exchange_with_root", limits=EngineLimits(max_steps=3))
    assert rec.snapshot()["counters"].get("engine.budget.steps", 0) == 1
