"""Dedicated coverage for the engine limit paths and diagnostic codes."""

from __future__ import annotations

from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.core import diagnostics
from repro.core.engine import EngineLimits, PCFGEngine
from repro.lang import programs
from repro.lang.cfg import build_cfg


def run(name, client=None, limits=None):
    program = programs.get(name).parse()
    cfg = build_cfg(program)
    return PCFGEngine(cfg, client or SimpleSymbolicClient(), limits).run()


# -- max_steps ------------------------------------------------------------------


def test_max_steps_exhaustion_is_a_budget_diagnostic():
    result = run("exchange_with_root", limits=EngineLimits(max_steps=3))
    assert result.gave_up
    assert result.confidence == diagnostics.PARTIAL
    (diag,) = result.diagnostics
    assert diag.code == diagnostics.BUDGET_STEPS
    assert diag.severity == diagnostics.WARNING
    assert "step limit 3 exceeded" in diag.message
    assert result.steps == 4  # the step that tripped the budget


def test_max_steps_not_tripped_on_exact_run():
    result = run("pingpong", limits=EngineLimits(max_steps=20_000))
    assert result.confidence == diagnostics.EXACT
    assert not any(
        d.code == diagnostics.BUDGET_STEPS for d in result.diagnostics
    )


# -- max_psets ------------------------------------------------------------------


def test_max_psets_split_giveup_carries_pset_bound_code():
    result = run("pingpong", limits=EngineLimits(max_psets=1))
    assert result.gave_up
    codes = {d.code for d in result.diagnostics}
    assert diagnostics.GIVEUP_PSET_BOUND in codes
    assert "exceeds p=1" in result.give_up_reason


def test_max_psets_split_giveup_strict_aborts():
    result = run(
        "pingpong", limits=EngineLimits(max_psets=1, strict=True)
    )
    assert result.confidence == diagnostics.GAVE_UP
    assert result.diagnostics[0].code == diagnostics.GIVEUP_PSET_BOUND


def test_generous_max_psets_is_exact():
    result = run("pingpong", limits=EngineLimits(max_psets=12))
    assert result.confidence == diagnostics.EXACT


# -- vacuous blocks -------------------------------------------------------------


class UnknownEmptiness(SimpleSymbolicClient):
    """A client that can never decide emptiness: blocked sets *might* be
    empty, so a block is possibly vacuous and must not be a failure."""

    def is_empty(self, state, pos):
        return None


def test_possibly_empty_blocked_sets_are_vacuous_not_giveup():
    result = run("stuck_receive", client=UnknownEmptiness())
    assert result.vacuous_blocks, "the blocked configuration must be reported"
    assert any("receive" in desc for desc in result.vacuous_blocks)
    # a possibly-vacuous block is NOT a degradation: no T, no diagnostic
    assert result.confidence == diagnostics.EXACT
    assert not result.gave_up
    assert result.diagnostics == []


def test_decided_nonempty_blocked_set_still_gives_up():
    result = run("stuck_receive")  # the plain client knows [0..0] is non-empty
    assert result.gave_up
    assert any(
        d.code == diagnostics.GIVEUP_NO_MATCH for d in result.diagnostics
    )
