"""StaticTopology / MatchRecord tests."""

from repro.core.topology import MatchRecord, StaticTopology


def record(send=1, recv=2, sdesc="[0..0]", rdesc="[1..1]", **kw):
    return MatchRecord(send, recv, sdesc, rdesc, **kw)


class TestStaticTopology:
    def test_add_accumulates_edges(self):
        topo = StaticTopology()
        topo.add(record())
        topo.add(record(send=3, recv=4))
        assert topo.node_edges() == frozenset({(1, 2), (3, 4)})

    def test_duplicate_records_deduped(self):
        topo = StaticTopology()
        topo.add(record())
        topo.add(record())
        assert len(topo.records) == 1

    def test_same_edge_different_sets_kept(self):
        topo = StaticTopology()
        topo.add(record(sdesc="[0..0]"))
        topo.add(record(sdesc="[1..1]"))
        assert len(topo.records) == 2
        assert len(topo.node_edges()) == 1

    def test_describe_lists_records(self):
        topo = StaticTopology()
        topo.add(record(send_label="C", recv_label="F"))
        text = topo.describe()
        assert "C:[0..0] -> F:[1..1]" in text

    def test_describe_empty(self):
        assert StaticTopology().describe() == "(no communication)"

    def test_record_str_without_labels(self):
        assert str(record()) == "n1:[0..0] -> n2:[1..1]"

    def test_mtype_defaults(self):
        r = record()
        assert r.mtype_send == "int"
        assert r.mtype_recv == "int"
