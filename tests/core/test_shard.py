"""Sharded fixpoint engine: plan geometry, lattice equivalence, failure
containment, cross-mode resume, and the parallel driver entry points.

The contract under test is the one DESIGN.md section 12 states: for any
worker count the sharded engine must report the *same analysis answer* as
the serial engine — scheduling may differ, the lattice outcome may not —
and every parallel-infrastructure failure (dead worker, unpicklable
client, unshippable states) degrades to a contained serial escape hatch
with a diagnostic, never a hang or a crash.
"""

from __future__ import annotations

import pytest

from repro.analyses.cartesian import CartesianClient
from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.core import diagnostics
from repro.core.driver import analyze_batch, analyze_with_fallback
from repro.core.engine import EngineLimits, PCFGEngine
from repro.core.shard import KILL_ENV, SHARD_FACTOR, ShardedEngine, ShardPlan
from repro.lang import programs
from repro.lang.cfg import build_cfg
from repro.obs import recorder as obs

# -- helpers ------------------------------------------------------------------


def _cfg(name):
    return build_cfg(programs.get(name).parse())


def _answer(result):
    """The observable lattice answer (scheduling-independent fields)."""
    return (
        result.confidence,
        result.gave_up,
        frozenset(result.matches),
        tuple(result.vacuous_blocks),
        len(result.final_states),
        result.topology.describe(),
    )


def _serial(name, client_factory=SimpleSymbolicClient, limits=None):
    return PCFGEngine(_cfg(name), client_factory(), limits).run()


def _sharded(name, jobs, client_factory=SimpleSymbolicClient, limits=None):
    return ShardedEngine(_cfg(name), client_factory(), limits, jobs=jobs).run()


SMALL_CORPUS = ["pingpong", "shift_right", "master_worker", "mdcask_full"]


# -- ShardPlan geometry -------------------------------------------------------


@pytest.mark.parametrize(
    "num_ranks,num_shards", [(1, 1), (1, 8), (7, 2), (40, 4), (40, 8), (100, 16)]
)
def test_shard_plan_partitions_every_rank(num_ranks, num_shards):
    plan = ShardPlan(num_ranks, num_shards)
    # the plan clamps to the rank domain: never more shards than ranks+1
    assert 1 <= plan.num_shards <= min(num_shards, num_ranks + 1)
    assert len(plan.cuts) == plan.num_shards - 1
    assert list(plan.cuts) == sorted(plan.cuts)
    shards = [plan.shard_of(rank) for rank in range(num_ranks)]
    # total function into [0, num_shards), monotone in RPO rank
    assert all(0 <= shard < plan.num_shards for shard in shards)
    assert shards == sorted(shards)


def test_shard_plan_single_shard_is_identity():
    plan = ShardPlan(25, 1)
    assert plan.cuts == ()
    assert {plan.shard_of(rank) for rank in range(25)} == {0}


def test_shard_plan_spreads_ranks_when_possible():
    plan = ShardPlan(64, 4)
    assert len({plan.shard_of(rank) for rank in range(64)}) == 4


def test_sharded_engine_overshards_for_stealing():
    engine = ShardedEngine(_cfg("pingpong"), SimpleSymbolicClient(), jobs=3)
    assert engine.jobs == 3
    assert SHARD_FACTOR >= 2  # more shards than workers -> queue steals


# -- lattice equivalence ------------------------------------------------------


@pytest.mark.parametrize("jobs", [2, 4])
@pytest.mark.parametrize("name", SMALL_CORPUS)
def test_sharded_answer_equals_serial(name, jobs):
    assert _answer(_sharded(name, jobs)) == _answer(_serial(name))


@pytest.mark.parametrize("jobs", [2, 4])
def test_sharded_cartesian_answer_equals_serial(jobs):
    serial = _serial("mdcask_full", CartesianClient)
    sharded = _sharded("mdcask_full", jobs, CartesianClient)
    assert serial.confidence == diagnostics.EXACT
    assert _answer(sharded) == _answer(serial)


def test_jobs_one_delegates_to_serial_engine():
    """jobs=1 must be the serial engine bit for bit (steps included)."""
    serial = _serial("mdcask_full")
    one = _sharded("mdcask_full", 1)
    assert _answer(one) == _answer(serial)
    assert one.steps == serial.steps


# -- obs counter shipping -----------------------------------------------------


def test_worker_counters_merge_into_parent_recorder():
    with obs.recording() as recorder:
        result = _sharded("mdcask_full", 2)
    assert not result.gave_up
    assert recorder.counters.get("engine.steps", 0) > 0
    assert recorder.counters.get("engine.shard.rounds", 0) >= 1


# -- failure containment ------------------------------------------------------


def test_killed_worker_degrades_to_partial_with_diagnostic(monkeypatch):
    """SIGKILLing a worker mid-round must not hang: the engine drains the
    lost shard in-process and admits the loss in the diagnostics."""
    monkeypatch.setenv(KILL_ENV, "0")
    serial = _serial("mdcask_full")
    result = _sharded("mdcask_full", 2)
    assert result.confidence == diagnostics.PARTIAL
    codes = [diag.code for diag in result.diagnostics]
    assert diagnostics.SHARD_WORKER_LOST in codes
    # the inline drain still finishes the analysis: same match relation
    assert frozenset(result.matches) == frozenset(serial.matches)


def test_unpicklable_client_falls_back_to_serial():
    client = SimpleSymbolicClient()
    client.poison = lambda: None  # closures cannot cross the pool boundary
    result = ShardedEngine(_cfg("pingpong"), client, jobs=2).run()
    assert _answer(result)[0] == diagnostics.EXACT
    codes = [diag.code for diag in result.diagnostics]
    assert diagnostics.SHARD_FALLBACK in codes
    fallback = next(
        diag for diag in result.diagnostics
        if diag.code == diagnostics.SHARD_FALLBACK
    )
    assert fallback.severity == diagnostics.INFO
    assert frozenset(result.matches) == frozenset(_serial("pingpong").matches)


def test_strict_mode_forces_single_process():
    """strict wants deterministic first-failure order: serial semantics."""
    limits = EngineLimits(strict=True)
    serial = _serial("pingpong", limits=limits)
    sharded = _sharded("pingpong", 4, limits=limits)
    assert _answer(sharded) == _answer(serial)
    assert sharded.steps == serial.steps


# -- cross-mode checkpoint interop --------------------------------------------


def _trip(engine_cls, jobs=None, max_steps=10):
    limits = EngineLimits(max_steps=max_steps)
    cfg = _cfg("mdcask_full")
    if jobs is None:
        engine = engine_cls(cfg, SimpleSymbolicClient(), limits)
    else:
        engine = engine_cls(cfg, SimpleSymbolicClient(), limits, jobs=jobs)
    return engine.run()


def test_sharded_trip_resumes_in_serial_engine():
    tripped = _trip(ShardedEngine, jobs=2)
    assert any(
        diag.code in diagnostics.BUDGET_CODES for diag in tripped.diagnostics
    )
    assert tripped.snapshot is not None
    clean = _serial("mdcask_full")
    resumed = PCFGEngine(
        _cfg("mdcask_full"), SimpleSymbolicClient()
    ).run(resume=tripped.snapshot)
    assert resumed.resumed_from
    assert resumed.confidence == diagnostics.EXACT
    assert frozenset(resumed.matches) == frozenset(clean.matches)
    assert resumed.topology.describe() == clean.topology.describe()


def test_serial_trip_resumes_in_sharded_engine():
    tripped = _trip(PCFGEngine)
    assert tripped.snapshot is not None
    clean = _serial("mdcask_full")
    resumed = ShardedEngine(
        _cfg("mdcask_full"), SimpleSymbolicClient(), jobs=2
    ).run(resume=tripped.snapshot)
    assert resumed.resumed_from
    assert resumed.confidence == diagnostics.EXACT
    assert frozenset(resumed.matches) == frozenset(clean.matches)
    assert resumed.topology.describe() == clean.topology.describe()


def test_sharded_trip_resumes_in_sharded_engine():
    tripped = _trip(ShardedEngine, jobs=2)
    assert tripped.snapshot is not None
    clean = _serial("mdcask_full")
    resumed = ShardedEngine(
        _cfg("mdcask_full"), SimpleSymbolicClient(), jobs=2
    ).run(resume=tripped.snapshot)
    assert resumed.confidence == diagnostics.EXACT
    assert frozenset(resumed.matches) == frozenset(clean.matches)


# -- parallel driver entry points ---------------------------------------------


def test_parallel_batch_matches_serial_in_order():
    items = [programs.get(name) for name in SMALL_CORPUS]

    def digest(pairs):
        return [
            (
                getattr(item, "name", "?"),
                report.rung_name,
                report.result.confidence,
                frozenset(report.result.matches),
            )
            for item, report in pairs
        ]

    serial = digest(analyze_batch(items))
    parallel = digest(analyze_batch(items, jobs=2))
    assert parallel == serial  # same answers, input order preserved


def test_parallel_batch_merges_worker_counters():
    items = [programs.get(name) for name in SMALL_CORPUS]
    with obs.recording() as recorder:
        list(analyze_batch(items, jobs=2))
    assert recorder.counters.get("engine.steps", 0) > 0


def test_parallel_rungs_pick_the_serial_choice():
    serial = analyze_with_fallback(programs.get("mdcask_full"))
    parallel = analyze_with_fallback(programs.get("mdcask_full"), jobs=2)
    assert parallel.rung_name == serial.rung_name
    assert parallel.result.confidence == serial.result.confidence
    assert frozenset(parallel.result.matches) == frozenset(serial.result.matches)
