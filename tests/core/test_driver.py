"""The precision-fallback ladder (`repro.core.driver`)."""

from __future__ import annotations

from repro.core import diagnostics
from repro.core.driver import (
    analyze_with_fallback,
    default_ladder,
    escalate,
)
from repro.core.engine import EngineLimits
from repro.lang import programs
from repro.lang.cfg import build_cfg
from repro.runtime import run_program


def test_first_rung_exact_wins_and_stops():
    report = analyze_with_fallback(programs.get("exchange_with_root"))
    assert report.rung_name == "cartesian"
    assert len(report.rungs) == 1  # later rungs were never run
    assert report.result.confidence == diagnostics.EXACT
    assert report.result.matches


def test_escalated_limits_rescue_a_budget_starved_run():
    # rung 1 runs out of steps (needs 23); the escalated rung doubles the
    # budget to 36, enough even at its deeper widen_after=4 (31 steps)
    report = analyze_with_fallback(
        programs.get("exchange_with_root"), limits=EngineLimits(max_steps=18)
    )
    assert report.rung_name == "cartesian-escalated"
    assert [outcome.name for outcome in report.rungs] == [
        "cartesian",
        "cartesian-escalated",
    ]
    assert report.rungs[0].confidence == diagnostics.PARTIAL
    assert report.result.confidence == diagnostics.EXACT


def test_unanalyzable_program_falls_to_the_baseline():
    report = analyze_with_fallback(programs.get("ring_modular"))
    assert report.rung_name == "mpi-cfg"
    assert [outcome.name for outcome in report.rungs] == [
        "cartesian",
        "cartesian-escalated",
        "simple-symbolic",
        "mpi-cfg",
    ]
    # the baseline always answers, marked partial (over-approximate)
    assert report.result.confidence == diagnostics.PARTIAL
    assert report.result.matches
    # the sharper rungs' partial outcomes remain inspectable
    assert all(
        outcome.confidence == diagnostics.PARTIAL for outcome in report.rungs
    )


def test_baseline_rung_is_sound_overapproximation():
    # every concretely observed edge must appear in the baseline topology
    program = programs.get("ring_modular").parse()
    report = analyze_with_fallback(program)
    assert report.rung_name == "mpi-cfg"
    cfg = build_cfg(program)
    for np in (4, 6, 8):
        trace = run_program(program, np, cfg=cfg)
        assert trace.topology().node_edges <= set(report.result.matches), (
            f"baseline missed a real edge at np={np}"
        )


def test_escalate_doubles_the_precision_knobs():
    base = EngineLimits(max_steps=100, widen_after=2, max_psets=4,
                        deadline_sec=1.5, strict=True)
    boosted = escalate(base)
    assert boosted.max_steps == 200
    assert boosted.widen_after == 4
    assert boosted.max_psets == 8
    # non-precision knobs are preserved untouched
    assert boosted.deadline_sec == 1.5
    assert boosted.strict is True


def test_default_ladder_shape():
    rungs = default_ladder(EngineLimits(max_psets=4))
    assert [rung.name for rung in rungs] == [
        "cartesian",
        "cartesian-escalated",
        "simple-symbolic",
        "mpi-cfg",
    ]
    assert rungs[1].limits.max_psets == 8
    assert rungs[2].limits.max_psets == 8


def test_report_describe_names_the_answering_rung():
    report = analyze_with_fallback(programs.get("ring_modular"))
    text = report.describe()
    assert "answer from rung: mpi-cfg" in text
    assert "cartesian: partial" in text
