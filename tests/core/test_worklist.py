"""The priority worklist and state-interning layer of the pCFG engine."""

from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.core.engine import PCFGEngine
from repro.lang import build_cfg, programs
from repro.obs import recorder as obs


def _engine(name: str, **kwargs) -> PCFGEngine:
    cfg = build_cfg(programs.get(name).parse())
    return PCFGEngine(cfg, SimpleSymbolicClient(), **kwargs)


class TestPriority:
    def test_priority_is_sorted_rpo_ranks(self):
        engine = _engine("pingpong")
        rpo = engine.cfg.rpo_index()
        nodes = sorted(rpo, key=rpo.get)
        early, late = nodes[0], nodes[-1]
        assert engine._priority(((early,), ())) < engine._priority(((late,), ()))
        # order inside the location tuple must not matter
        assert engine._priority(((late, early), ())) == engine._priority(
            ((early, late), ())
        )

    def test_upstream_configurations_run_first(self):
        engine = _engine("pingpong")
        rpo = engine.cfg.rpo_index()
        entry = engine.cfg.entry
        others = [nid for nid in rpo if nid != entry]
        assert all(
            engine._priority(((entry,), ())) <= engine._priority(((nid,), ()))
            for nid in others
        )

    def test_dedup_counter_fires(self):
        with obs.recording() as rec:
            result = _engine("exchange_with_root").run()
            counters = rec.snapshot()["counters"]
        assert not result.gave_up
        assert counters.get("engine.worklist.dedup", 0) > 0


class TestInterning:
    def test_intern_hits_on_exchange(self):
        with obs.recording() as rec:
            result = _engine("exchange_with_root").run()
            counters = rec.snapshot()["counters"]
        assert not result.gave_up
        assert counters.get("engine.intern.hits", 0) > 0
        assert counters.get("engine.intern.misses", 0) > 0

    def test_interned_states_are_shared_objects(self):
        engine = _engine("exchange_with_root")
        result = engine.run()
        assert not result.gave_up
        # the table holds one canonical object per fingerprint
        assert len(engine._intern) > 0
        fingerprints = [
            engine.client.state_fingerprint(s) for s in engine._intern.values()
        ]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_intern_off_same_matches(self):
        on = _engine("exchange_with_root", intern_states=True).run()
        off = _engine("exchange_with_root", intern_states=False).run()
        assert on.gave_up == off.gave_up is False
        assert set(on.matches) == set(off.matches)

    def test_state_fingerprint_equality_implies_states_equal(self):
        client = SimpleSymbolicClient()
        cfg = build_cfg(programs.get("exchange_with_root").parse())
        engine = PCFGEngine(cfg, client)
        result = engine.run()
        assert not result.gave_up
        states = list(result.node_states.values())
        by_fp = {}
        for state in states:
            fp = client.state_fingerprint(state)
            if fp in by_fp:
                assert client.states_equal(by_fp[fp], state)
            else:
                by_fp[fp] = state
