"""The ambient progress-hook switchboard and the engine heartbeats."""

from __future__ import annotations

import threading

from repro.core import progress
from repro.core.driver import analyze_with_fallback
from repro.lang import programs


class TestSwitchboard:
    def test_default_is_none(self):
        assert progress.current() is None

    def test_installed_is_scoped(self):
        events = []
        with progress.installed(events.append):
            assert progress.current() is not None
            progress.emit({"event": "x"})
        assert progress.current() is None
        assert events == [{"event": "x"}]

    def test_installed_none_is_noop(self):
        with progress.installed(None):
            assert progress.current() is None

    def test_emit_swallows_subscriber_errors(self):
        def bomb(event):
            raise RuntimeError("subscriber bug")

        with progress.installed(bomb):
            progress.emit({"event": "x"})  # must not raise

    def test_hooks_are_thread_local(self):
        seen = {}

        def other_thread():
            seen["other"] = progress.current()

        with progress.installed(lambda e: None):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["other"] is None


class TestDriverEvents:
    def test_fallback_ladder_announces_rungs_and_heartbeats(self):
        events = []
        report = analyze_with_fallback(
            programs.get("pingpong").parse(), progress=events.append
        )
        assert report.result is not None
        rungs = [e["rung"] for e in events if e["event"] == "rung"]
        assert rungs and rungs[0] == "cartesian"
        beats = [e for e in events if e["event"] == "progress"]
        assert beats, "engine heartbeats missing"
        assert beats[0]["phase"] == "engine"
        assert beats[0]["steps"] == 1
        assert "worklist" in beats[0]

    def test_progress_forces_serial_climb(self):
        # a progress hook disables rung speculation: events arrive in
        # ladder order even with jobs > 1
        events = []
        analyze_with_fallback(
            programs.get("pingpong").parse(), jobs=2, progress=events.append
        )
        rungs = [e["rung"] for e in events if e["event"] == "rung"]
        assert rungs == sorted(rungs, key=rungs.index)  # stable serial order
        assert rungs[0] == "cartesian"

    def test_throwing_hook_does_not_abort_analysis(self):
        calls = []

        def flaky(event):
            calls.append(event)
            raise RuntimeError("hook bug")

        report = analyze_with_fallback(
            programs.get("pingpong").parse(), progress=flaky
        )
        assert report.result is not None
        assert calls, "hook was never consulted"
