"""Fault-injection harness for the resilient pCFG engine.

``ChaosClient`` wraps a real :class:`~repro.core.client.ClientAnalysis`
and, on a seeded schedule, makes its callbacks misbehave the way buggy
client code does in practice:

* raise an arbitrary exception (``ChaosError``) out of any callback;
* return a :class:`CorruptedState` — an object that explodes on *any*
  attribute access — from a state-producing callback, so the damage
  surfaces later, inside a different callback, far from the fault site.

Everything is driven by one ``random.Random(seed)``: a given
``(program, seed, fault_rate)`` triple replays the exact same fault
schedule, which is what the CI chaos job relies on (it prints the seed on
failure).  The injection log records every fault for debugging.

This module deliberately lives under ``tests/``: it is test
infrastructure, not a shipping feature.
"""

from __future__ import annotations

import os
import random
from typing import List, Optional

from repro.core.client import ClientAnalysis


def default_seed() -> int:
    """The harness-wide base seed: ``CHAOS_SEED`` env var, default 1337.

    Reading the environment at call time (not import time) lets a test
    process tighten the seed mid-session, matching the reproduction
    instructions CI prints on failure.
    """
    return int(os.environ.get("CHAOS_SEED", "1337"))

#: callbacks the engine routes through its fault guard; chaos can hit any
FAULTABLE = (
    "initial",
    "num_psets",
    "describe_pset",
    "transfer",
    "branch",
    "try_match",
    "can_buffer",
    "buffer_send",
    "pending_sites",
    "is_empty",
    "merge_psets",
    "remove_pset",
    "rename",
    "join",
    "widen",
    "states_equal",
    "state_fingerprint",
)

#: callbacks whose return value is (or contains) a client state — these can
#: additionally be corrupted instead of raising, so the failure surfaces in
#: a *later* callback that tries to use the state
CORRUPTIBLE = (
    "initial",
    "transfer",
    "merge_psets",
    "remove_pset",
    "rename",
    "join",
    "widen",
)


class ChaosError(RuntimeError):
    """The injected fault: an arbitrary exception the engine never expects."""


class CorruptedState:
    """A state stand-in that raises on any attribute access.

    Models a client bug that returns garbage: the engine (or the wrapped
    client) only discovers the corruption when it next touches the state.
    """

    def __init__(self, origin: str):
        object.__setattr__(self, "_origin", origin)

    def __getattr__(self, name):
        raise ChaosError(
            f"corrupted state (injected at {self._origin!r}) accessed "
            f"via .{name}"
        )

    def __repr__(self):
        return f"<CorruptedState from {object.__getattribute__(self, '_origin')!r}>"


class ChaosClient(ClientAnalysis):
    """Seeded fault-injection wrapper around a real client analysis."""

    def __init__(
        self,
        inner: ClientAnalysis,
        seed: Optional[int] = None,
        fault_rate: float = 0.05,
        corrupt_rate: float = 0.3,
        only: Optional[List[str]] = None,
    ):
        self.inner = inner
        self.seed = default_seed() if seed is None else seed
        self.rng = random.Random(self.seed)
        self.fault_rate = fault_rate
        #: of the injected faults on CORRUPTIBLE callbacks, the fraction
        #: that corrupt the return value instead of raising
        self.corrupt_rate = corrupt_rate
        self.only = set(only) if only is not None else None
        #: (callback, kind) pairs in injection order, for debugging
        self.log: List[tuple] = []

    def _maybe_fault(self, callback: str):
        if self.only is not None and callback not in self.only:
            return None
        if self.rng.random() >= self.fault_rate:
            return None
        if callback in CORRUPTIBLE and self.rng.random() < self.corrupt_rate:
            self.log.append((callback, "corrupt"))
            return CorruptedState(callback)
        self.log.append((callback, "raise"))
        raise ChaosError(f"injected fault in {callback!r}")

    def _dispatch(self, callback: str, *args):
        corrupted = self._maybe_fault(callback)
        if corrupted is not None:
            return corrupted
        return getattr(self.inner, callback)(*args)

    # -- the full ClientAnalysis surface, uniformly wrapped ------------------

    def initial(self):
        return self._dispatch("initial")

    def num_psets(self, state):
        return self._dispatch("num_psets", state)

    def describe_pset(self, state, pos):
        return self._dispatch("describe_pset", state, pos)

    def transfer(self, state, pos, node):
        return self._dispatch("transfer", state, pos, node)

    def branch(self, state, pos, node):
        return self._dispatch("branch", state, pos, node)

    def try_match(self, state, locs, blocked, cfg):
        return self._dispatch("try_match", state, locs, blocked, cfg)

    def can_buffer(self, state, pos, node):
        return self._dispatch("can_buffer", state, pos, node)

    def buffer_send(self, state, pos, node):
        return self._dispatch("buffer_send", state, pos, node)

    def pending_sites(self, state):
        return self._dispatch("pending_sites", state)

    def is_empty(self, state, pos):
        return self._dispatch("is_empty", state, pos)

    def merge_psets(self, state, i, j):
        return self._dispatch("merge_psets", state, i, j)

    def remove_pset(self, state, pos):
        return self._dispatch("remove_pset", state, pos)

    def rename(self, state, perm):
        return self._dispatch("rename", state, perm)

    def join(self, left, right):
        return self._dispatch("join", left, right)

    def widen(self, prev, new):
        return self._dispatch("widen", prev, new)

    def states_equal(self, left, right):
        return self._dispatch("states_equal", left, right)

    def state_fingerprint(self, state):
        return self._dispatch("state_fingerprint", state)
