"""Send-receive matching condition tests (the paper's Fig. 3 cases).

These drive the client's matcher directly on constructed states to verify
the surjection + identity-composition conditions, including the *invalid*
configurations of Fig. 3(a) and 3(b) that must be rejected.
"""

import pytest

from repro.analyses.simple_symbolic import SimpleSymbolicClient, analyze_program
from repro.lang import parse
from repro.lang.cfg import NodeKind
from repro.runtime import run_program


def analyze_source(source: str, **client_kwargs):
    program = parse(source)
    client = SimpleSymbolicClient(**client_kwargs)
    result, cfg, client = analyze_program(program, client)
    return result, cfg, program


class TestValidMatches:
    def test_paper_shift_example(self):
        """Section VI example shape: [0..r-1] sends to id+r and the
        receivers [r..2r-1] receive from id-r (with r = 2)."""
        source = """
            if id < 2 then
                send 1 -> id + 2
            elif id < 4 then
                receive y <- id - 2
            else
                skip
            end
        """
        result, cfg, program = analyze_source(source, min_np=8)
        assert not result.gave_up
        trace = run_program(program, 8, cfg=cfg)
        assert trace.topology().node_edges <= result.matches

    def test_identity_composition_required(self):
        """Fig. 3(b): matched bijections whose composition is not the
        identity are invalid — receive from id+1 cannot match send to id+1."""
        source = """
            if id == 0 then
                send 1 -> id + 1
            elif id == 1 then
                receive y <- id + 1
            elif id == 2 then
                send 2 -> id - 1
            else
                skip
            end
        """
        result, cfg, program = analyze_source(source)
        # process 1 receives from 2, never from 0: the (0 -> 1) send leaks
        trace = run_program(program, 8, cfg=cfg)
        # static must cover dynamic without inventing the 0->1 match as
        # consumed by the receive
        assert trace.topology().node_edges <= result.matches or result.gave_up

    def test_constant_to_constant(self):
        source = """
            if id == 2 then
                send 5 -> 4
            elif id == 4 then
                receive y <- 2
                print y
            else
                skip
            end
        """
        result, cfg, program = analyze_source(source, min_np=6)
        assert not result.gave_up
        assert len(result.matches) == 1
        trace = run_program(program, 6, cfg=cfg)
        assert trace.prints[4] == [5]


class TestInvalidMatches:
    def test_two_senders_one_receiver_rejected(self):
        """Fig. 3(a): two senders mapped to the same receiver cannot both
        match its single receive."""
        source = """
            if id == 0 then
                send 1 -> 2
            elif id == 1 then
                send 2 -> 2
            elif id == 2 then
                receive y <- 0
            else
                skip
            end
        """
        result, cfg, program = analyze_source(source)
        # the send from 1 to 2 is never received: analysis must not match it
        sends_matched = {s for s, _ in result.matches}
        send_nodes = [
            n.node_id
            for n in cfg.nodes.values()
            if n.kind == NodeKind.SEND and "send 2" in n.describe()
        ]
        assert all(node not in sends_matched for node in send_nodes)

    def test_mismatched_shift_rejected(self):
        """send -> id+2 against receive <- id-1: composition is not the
        identity, so no match may be recorded between them."""
        source = """
            if id == 0 then
                send 1 -> id + 2
            elif id == 2 then
                receive y <- id - 1
            else
                skip
            end
        """
        result, cfg, program = analyze_source(source)
        assert result.gave_up  # nothing can be matched soundly
        assert len(result.matches) == 0


class TestExactnessAgainstGroundTruth:
    @pytest.mark.parametrize("num_procs", [4, 5, 8, 11])
    def test_no_spurious_matches_exchange(self, num_procs):
        from repro.lang import programs

        result, cfg, _ = analyze_program(programs.get("exchange_with_root"))
        trace = run_program(programs.get("exchange_with_root").parse(), num_procs, cfg=cfg)
        dynamic = trace.topology().node_edges
        assert dynamic <= result.matches
        # exactness: every static match edge occurs dynamically as well
        assert set(result.matches) <= set(dynamic)
