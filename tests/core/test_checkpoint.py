"""Crash-safe checkpoint/resume (`repro.core.checkpoint` + engine wiring).

Three layers of guarantees:

1. **Codec round-trips** (Hypothesis): every registered domain codec —
   constraint graphs, HSMs, interval process sets — decodes back to a
   semantically identical object, and re-encoding is canonical (stable).
2. **Resume identity**: killing a run at *every* possible step boundary
   and resuming from the budget-trip snapshot converges to a result
   byte-identical to the uninterrupted run (topology, constants, step
   count, confidence) on the Fig. 2 ping-pong and NAS-CG transpose
   corpus.
3. **Corruption safety**: a truncated, tampered, version-skewed, or
   wrong-program snapshot never raises — the engine records a
   ``CHECKPOINT_CORRUPT`` / ``CHECKPOINT_MISMATCH`` diagnostic, cold
   starts, and still reaches ``exact``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyses.cartesian import CartesianClient, analyze_cartesian
from repro.analyses.constprop import propagate_constants
from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.cgraph.constraint_graph import ConstraintGraph
from repro.core import diagnostics
from repro.core.checkpoint import (
    FORMAT,
    Checkpointer,
    Snapshot,
    SnapshotError,
    decode,
    encode,
)
from repro.core.driver import analyze_with_fallback, escalate
from repro.core.engine import EngineLimits, PCFGEngine
from repro.expr.linear import LinearExpr
from repro.expr.poly import Poly
from repro.hsm.hsm import HSM
from repro.lang import programs
from repro.lang.cfg import build_cfg
from repro.procset.interval import Bound, ProcSet, SymRange

# -- helpers ------------------------------------------------------------------


def _cfg(name):
    return build_cfg(programs.get(name).parse())


def _run(name, client_factory, limits=None, resume=None, checkpointer=None):
    engine = PCFGEngine(
        _cfg(name), client_factory(), limits, checkpointer=checkpointer
    )
    return engine.run(resume=resume)


def _identity(result):
    """The observable fields a resumed run must reproduce exactly."""
    return (
        result.steps,
        result.confidence,
        result.topology.describe(),
        sorted(result.matches),
        len(result.final_states),
        sorted(result.explored.nodes),
    )


# -- codec round-trips (Hypothesis) -------------------------------------------

NAMES = st.sampled_from(["x", "y", "np", "nrows", "0::v", "1::tmp"])

linexprs = st.builds(
    LinearExpr,
    st.integers(min_value=-8, max_value=8),
    st.dictionaries(NAMES, st.integers(min_value=-3, max_value=3), max_size=2),
)

bounds = st.builds(
    lambda exprs: Bound(exprs), st.lists(linexprs, min_size=1, max_size=2)
)

symranges = st.builds(SymRange, bounds, bounds)

procsets = st.builds(
    lambda ranges: ProcSet(ranges), st.lists(symranges, min_size=0, max_size=3)
)

small_polys = st.one_of(
    st.integers(min_value=0, max_value=6).map(Poly.const),
    st.sampled_from(["np", "nrows", "ncols"]).map(Poly.var),
    st.builds(lambda a, b: Poly.var(a) * Poly.var(b), NAMES, NAMES),
)

hsms = st.recursive(
    st.builds(HSM, small_polys, small_polys, small_polys),
    lambda children: st.builds(HSM, children, small_polys, small_polys),
    max_leaves=3,
)


@st.composite
def cgraphs(draw):
    graph = ConstraintGraph()
    names = draw(st.lists(NAMES, min_size=1, max_size=4, unique=True))
    for name in names:
        graph.add_var(name)
    for x, y, c in draw(
        st.lists(
            st.tuples(
                st.sampled_from(names),
                st.sampled_from(names),
                st.integers(min_value=-5, max_value=5),
            ),
            max_size=6,
        )
    ):
        if x != y:
            graph.add_diff(x, y, c)
    for name, c in draw(
        st.lists(
            st.tuples(st.sampled_from(names), st.integers(min_value=-4, max_value=4)),
            max_size=2,
        )
    ):
        graph.set_const(name, c)
    return graph


def _roundtrip_stable(value):
    """decode inverts encode, and re-encoding is canonical."""
    encoded = encode(value)
    json.dumps(encoded)  # must already be plain JSON data
    decoded = decode(encoded)
    assert type(decoded) is type(value)
    assert encode(decoded) == encoded
    return decoded


@settings(max_examples=60, deadline=None)
@given(expr=linexprs)
def test_linexpr_codec_roundtrip(expr):
    assert _roundtrip_stable(expr) == expr


@settings(max_examples=60, deadline=None)
@given(pset=procsets)
def test_interval_procset_codec_roundtrip(pset):
    decoded = _roundtrip_stable(pset)
    assert list(decoded.ranges) == list(pset.ranges)


@settings(max_examples=60, deadline=None)
@given(h=hsms)
def test_hsm_codec_roundtrip(h):
    assert _roundtrip_stable(h) == h


@settings(max_examples=60, deadline=None)
@given(graph=cgraphs())
def test_constraint_graph_codec_roundtrip(graph):
    decoded = _roundtrip_stable(graph)
    assert decoded.to_state() == graph.to_state()
    # semantic identity, not just representational: same canonical closure
    assert decoded.fingerprint() == graph.fingerprint()


# -- resume identity ----------------------------------------------------------

CORPUS_CASES = [
    ("pingpong", SimpleSymbolicClient),  # Fig. 2
    ("transpose_square", CartesianClient),  # NAS-CG transpose
    ("transpose_rect", CartesianClient),
    ("exchange_with_root", CartesianClient),  # Fig. 1/5
]


@pytest.mark.parametrize("name,client_factory", CORPUS_CASES)
def test_kill_at_every_step_then_resume_is_identical(name, client_factory):
    clean = _run(name, client_factory)
    assert clean.confidence == diagnostics.EXACT
    for k in range(1, clean.steps + 1):
        tripped = _run(name, client_factory, EngineLimits(max_steps=k))
        if k >= clean.steps:
            assert tripped.snapshot is None  # completed: nothing tripped
            continue
        assert tripped.snapshot is not None, f"k={k}: no snapshot captured"
        assert tripped.snapshot.steps == k
        resumed = _run(name, client_factory, resume=tripped.snapshot)
        assert resumed.resumed_from.startswith("snapshot(")
        assert _identity(resumed) == _identity(clean), f"killed at step {k}"


def test_constants_report_identical_after_resume():
    program = programs.get("pingpong").parse()
    clean_report, clean_result, _ = propagate_constants(program)
    tripped_report, tripped_result, _ = propagate_constants(
        program, limits=EngineLimits(max_steps=4)
    )
    assert tripped_result.snapshot is not None
    # the interrupted run has not proven the Fig. 2 constants yet
    assert tripped_report.parallel != clean_report.parallel
    resumed_report, resumed_result, _ = propagate_constants(
        program, resume=tripped_result.snapshot
    )
    assert resumed_result.confidence == clean_result.confidence
    assert resumed_report.parallel == clean_report.parallel
    assert resumed_report.sequential == clean_report.sequential


def test_deadline_trip_snapshots_and_resumes():
    clean = _run("pingpong", SimpleSymbolicClient)
    tripped = _run(
        "pingpong", SimpleSymbolicClient, EngineLimits(deadline_sec=0.0)
    )
    assert tripped.confidence == diagnostics.PARTIAL
    assert any(
        d.code == diagnostics.BUDGET_DEADLINE for d in tripped.diagnostics
    )
    assert tripped.snapshot is not None
    assert tripped.snapshot.steps < clean.steps
    resumed = _run("pingpong", SimpleSymbolicClient, resume=tripped.snapshot)
    assert _identity(resumed) == _identity(clean)


def test_periodic_checkpoints_are_resumable(tmp_path):
    clean = _run("pingpong", SimpleSymbolicClient)
    ckpt = Checkpointer(tmp_path, name="pingpong", every_steps=3)
    full = _run("pingpong", SimpleSymbolicClient, checkpointer=ckpt)
    assert _identity(full) == _identity(clean)  # checkpointing is transparent
    assert ckpt.path.exists()
    snap = ckpt.load()
    assert 0 < snap.steps < clean.steps  # a mid-run boundary, not the end
    resumed = _run("pingpong", SimpleSymbolicClient, resume=ckpt.path)
    assert resumed.resumed_from == f"checkpoint:{ckpt.path}"
    assert _identity(resumed) == _identity(clean)


def test_budget_trip_writes_checkpoint_file(tmp_path):
    ckpt = Checkpointer(tmp_path, name="pp")
    tripped = _run(
        "pingpong", SimpleSymbolicClient, EngineLimits(max_steps=4),
        checkpointer=ckpt,
    )
    assert tripped.checkpoint_path == str(ckpt.path)
    assert ckpt.path.exists()
    clean = _run("pingpong", SimpleSymbolicClient)
    resumed = _run("pingpong", SimpleSymbolicClient, resume=ckpt.path)
    assert _identity(resumed) == _identity(clean)


def test_atexit_flush_mid_iteration_is_consistent(tmp_path):
    """An interpreter-exit flush fired *inside* a client callback rolls the
    in-flight iteration back, so the snapshot resumes to the clean result."""
    ckpt = Checkpointer(tmp_path, name="flush")

    class Flushing(SimpleSymbolicClient):
        def __init__(self):
            super().__init__()
            self.engine = None
            self.fired = False

        def transfer(self, state, pos, node):
            if self.engine is not None and not self.fired:
                self.fired = True
                self.engine._atexit_flush()  # simulate dying mid-iteration
            return super().transfer(state, pos, node)

    client = Flushing()
    engine = PCFGEngine(_cfg("pingpong"), client, checkpointer=ckpt)
    client.engine = engine
    full = engine.run()
    assert client.fired
    assert full.confidence == diagnostics.EXACT
    assert ckpt.path.exists()
    clean = _run("pingpong", Flushing)
    resumed = _run("pingpong", Flushing, resume=ckpt.path)
    assert _identity(resumed) == _identity(clean)


# -- corruption and mismatch safety -------------------------------------------


def _tripped_checkpoint(tmp_path, name="pingpong", client=SimpleSymbolicClient):
    ckpt = Checkpointer(tmp_path, name=name)
    _run(name, client, EngineLimits(max_steps=4), checkpointer=ckpt)
    assert ckpt.path.exists()
    return ckpt


def _assert_cold_start_with(result, code):
    assert result.confidence == diagnostics.EXACT  # cold start still converges
    assert not result.resumed_from
    rejections = [d for d in result.diagnostics if d.code == code]
    assert rejections and all(
        d.severity == diagnostics.INFO for d in rejections
    )


def test_snapshot_json_roundtrip(tmp_path):
    ckpt = _tripped_checkpoint(tmp_path)
    snap = ckpt.load()
    again = Snapshot.from_json(snap.to_json())
    assert again.payload == snap.payload
    assert snap.cfg_fingerprint and snap.client_name == "SimpleSymbolicClient"


def test_tampered_payload_is_rejected(tmp_path):
    ckpt = _tripped_checkpoint(tmp_path)
    text = ckpt.path.read_text()
    tampered = text.replace('"steps"', '"stepz"', 1)
    assert tampered != text
    ckpt.path.write_text(tampered)
    with pytest.raises(SnapshotError) as excinfo:
        ckpt.load()
    assert excinfo.value.code == diagnostics.CHECKPOINT_CORRUPT
    result = _run("pingpong", SimpleSymbolicClient, resume=ckpt.path)
    _assert_cold_start_with(result, diagnostics.CHECKPOINT_CORRUPT)


def test_truncated_snapshot_degrades_to_cold_start(tmp_path):
    ckpt = _tripped_checkpoint(tmp_path)
    ckpt.path.write_text(ckpt.path.read_text()[:40])
    result = _run("pingpong", SimpleSymbolicClient, resume=ckpt.path)
    _assert_cold_start_with(result, diagnostics.CHECKPOINT_CORRUPT)


def test_missing_snapshot_degrades_to_cold_start(tmp_path):
    result = _run(
        "pingpong", SimpleSymbolicClient, resume=tmp_path / "nope.ckpt.json"
    )
    _assert_cold_start_with(result, diagnostics.CHECKPOINT_CORRUPT)


def test_version_skew_degrades_to_cold_start(tmp_path):
    ckpt = _tripped_checkpoint(tmp_path)
    document = json.loads(ckpt.path.read_text())
    assert document["format"] == FORMAT
    document["format"] = "repro-ckpt/0"
    ckpt.path.write_text(json.dumps(document))
    result = _run("pingpong", SimpleSymbolicClient, resume=ckpt.path)
    _assert_cold_start_with(result, diagnostics.CHECKPOINT_MISMATCH)


def test_wrong_program_snapshot_degrades_to_cold_start(tmp_path):
    ckpt = _tripped_checkpoint(tmp_path, name="pingpong")
    result = _run("shift_right", SimpleSymbolicClient, resume=ckpt.path)
    _assert_cold_start_with(result, diagnostics.CHECKPOINT_MISMATCH)


def test_wrong_client_snapshot_degrades_to_cold_start(tmp_path):
    ckpt = _tripped_checkpoint(tmp_path)  # SimpleSymbolicClient snapshot
    result = _run("pingpong", CartesianClient, resume=ckpt.path)
    _assert_cold_start_with(result, diagnostics.CHECKPOINT_MISMATCH)


# -- fallback-ladder warm start -----------------------------------------------


def test_fallback_ladder_warm_starts_escalated_rung():
    spec = programs.get("exchange_with_root")
    report = analyze_with_fallback(spec, limits=EngineLimits(max_steps=18))
    assert report.rung_name == "cartesian-escalated"
    assert not report.rungs[0].resumed_from  # first rung is always cold
    assert report.rungs[1].resumed_from.startswith("snapshot(")
    assert "resumed from snapshot(" in report.rungs[1].describe()
    assert report.result.confidence == diagnostics.EXACT
    # the warm-started rung answers exactly what a cold escalated run does
    cold, _, _ = analyze_cartesian(
        spec.parse(), limits=escalate(EngineLimits(max_steps=18))
    )
    assert report.result.topology.describe() == cold.topology.describe()


def test_fallback_does_not_warm_start_from_poisoned_runs():
    """Only pure budget trips carry forward: a rung degraded by anything
    else (here: an unjoinable give-up) must cold-start its successor."""
    from repro.core.driver import _carryable_snapshot

    tripped = _run("pingpong", SimpleSymbolicClient, EngineLimits(max_steps=4))
    assert _carryable_snapshot(tripped) is tripped.snapshot is not None
    poisoned = _run(
        "pingpong", SimpleSymbolicClient, EngineLimits(max_steps=4)
    )
    poisoned.diagnostics.append(
        diagnostics.Diagnostic(
            code=diagnostics.CLIENT_FAULT, message="injected"
        )
    )
    assert _carryable_snapshot(poisoned) is None


# -- CLI ----------------------------------------------------------------------


def test_cli_resume_constants_byte_identical(tmp_path, capsys):
    from repro.cli import main

    assert main(["pingpong", "--constants"]) == 0
    clean_out = capsys.readouterr().out
    main(
        ["pingpong", "--constants", "--checkpoint-dir", str(tmp_path),
         "--max-steps", "4"]
    )
    capsys.readouterr()
    assert main(
        ["resume", "pingpong", "--constants", "--checkpoint-dir", str(tmp_path)]
    ) == 0
    assert capsys.readouterr().out == clean_out


def test_cli_resume_after_deadline_trip_byte_identical(tmp_path, capsys):
    from repro.cli import main

    assert main(["pingpong", "--no-validate"]) == 0
    clean_out = capsys.readouterr().out
    rc = main(
        ["pingpong", "--no-validate", "--deadline", "0",
         "--checkpoint-dir", str(tmp_path)]
    )
    assert rc == 1  # deadline tripped: partial
    capsys.readouterr()
    assert main(
        ["resume", "pingpong", "--no-validate", "--checkpoint-dir", str(tmp_path)]
    ) == 0
    assert capsys.readouterr().out == clean_out


def test_cli_resume_without_snapshot_is_a_clean_cold_start(tmp_path, capsys):
    from repro.cli import main

    assert main(["pingpong", "--no-validate"]) == 0
    clean_out = capsys.readouterr().out
    assert main(
        ["resume", "pingpong", "--no-validate", "--checkpoint-dir", str(tmp_path)]
    ) == 0
    assert capsys.readouterr().out == clean_out


# -- checkpoint I/O hardening (atomic_write_text + CHECKPOINT_IO) -------------


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        from repro.core.checkpoint import atomic_write_text

        target = tmp_path / "out.json"
        atomic_write_text(target, '{"a": 1}')
        assert target.read_text() == '{"a": 1}'

    def test_overwrite_replaces_whole_content(self, tmp_path):
        from repro.core.checkpoint import atomic_write_text

        target = tmp_path / "out.json"
        atomic_write_text(target, "long " * 100)
        atomic_write_text(target, "short")
        assert target.read_text() == "short"

    def test_leaves_no_temp_files(self, tmp_path):
        from repro.core.checkpoint import atomic_write_text

        atomic_write_text(tmp_path / "a.json", "x")
        atomic_write_text(tmp_path / "b.json", "y")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json", "b.json"]

    def test_temp_lives_next_to_target(self, tmp_path, monkeypatch):
        # the tmp file must be created in the target's directory (same
        # filesystem), or os.replace could face a cross-device move
        from pathlib import Path

        import repro.core.checkpoint as ckpt

        seen = {}
        real_replace = ckpt.os.replace

        def spy(src, dst):
            seen["src"], seen["dst"] = str(src), str(dst)
            return real_replace(src, dst)

        monkeypatch.setattr(ckpt.os, "replace", spy)
        ckpt.atomic_write_text(tmp_path / "c.json", "z")
        assert Path(seen["src"]).parent == Path(seen["dst"]).parent


class TestCheckpointIOFailures:
    def _blocked_checkpointer(self, tmp_path):
        # the "directory" is a regular file, so mkdir(exist_ok=True)
        # raises OSError — a deterministic I/O failure even when running
        # as root (where permission bits would not stop the write)
        blocked = tmp_path / "blocked"
        blocked.write_text("I am a file, not a directory")
        return Checkpointer(blocked, name="analysis")

    def test_unwritable_directory_raises_snapshot_error(self, tmp_path):
        checkpointer = self._blocked_checkpointer(tmp_path)
        snapshot = Snapshot(payload={"format": FORMAT, "cfg": "", "client": ""})
        with pytest.raises(SnapshotError) as excinfo:
            checkpointer.write(snapshot)
        assert excinfo.value.code == diagnostics.CHECKPOINT_IO

    def test_engine_survives_failed_checkpoint_write(self, tmp_path):
        checkpointer = self._blocked_checkpointer(tmp_path)
        checkpointer.every_steps = 2
        result = _run(
            "pingpong", CartesianClient,
            EngineLimits(), checkpointer=checkpointer,
        )
        codes = [diag.code for diag in result.diagnostics]
        assert diagnostics.CHECKPOINT_IO in codes
        # the INFO diagnostic must not degrade the analysis itself
        assert result.confidence == diagnostics.EXACT
        assert result.checkpoint_path is None

    def test_io_diagnostic_is_deduplicated_per_run(self, tmp_path):
        checkpointer = self._blocked_checkpointer(tmp_path)
        checkpointer.every_steps = 1  # fail the write at every step
        result = _run(
            "pingpong", CartesianClient,
            EngineLimits(), checkpointer=checkpointer,
        )
        codes = [diag.code for diag in result.diagnostics]
        assert codes.count(diagnostics.CHECKPOINT_IO) == 1

    def test_io_failure_is_counted(self, tmp_path):
        from repro.obs import recorder as obs

        checkpointer = self._blocked_checkpointer(tmp_path)
        checkpointer.every_steps = 2
        with obs.recording() as recorder:
            _run(
                "pingpong", CartesianClient,
                EngineLimits(), checkpointer=checkpointer,
            )
        assert recorder.counters.get("engine.ckpt.io_errors", 0) >= 1
        assert recorder.counters.get("engine.ckpt.write_errors", 0) >= 1
