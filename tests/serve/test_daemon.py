"""The service scheduler: admission, QoS clamping, caching, coalescing,
load shedding, degraded modes, recovery, and drain — all through the
in-process (inline-isolation) service, no sockets."""

from __future__ import annotations

import json
import time

import pytest

from repro.corpus.generator import generate
from repro.obs import recorder as obs
from repro.serve.daemon import (
    AnalysisService,
    AnalyzeRequest,
    ServiceConfig,
    TenantBudget,
)
from repro.serve.journal import JobJournal
from repro.serve.retry import RetryPolicy


def _program(seed: int = 11) -> str:
    return generate(seed).source


def _service(tmp_path, **overrides) -> AnalysisService:
    config = ServiceConfig(
        state_dir=tmp_path / "state",
        workers=overrides.pop("workers", 1),
        isolation="inline",
        allow_test_faults=True,
        retry=overrides.pop("retry", RetryPolicy(max_retries=1, backoff_base_sec=0.01,
                                                 backoff_cap_sec=0.02)),
        **overrides,
    )
    service = AnalysisService(config)
    service.start()
    return service


@pytest.fixture
def service(tmp_path):
    svc = _service(tmp_path)
    yield svc
    svc.stop()


def _counters() -> dict:
    recorder = obs.active_recorder()
    return dict(recorder.counters) if isinstance(recorder, obs.Recorder) else {}


class TestSubmit:
    def test_accept_then_complete(self, service):
        status, job = service.submit(AnalyzeRequest(program=_program()))
        assert status == "accepted"
        assert job.wait(30)
        assert job.result["confidence"] in ("exact", "partial")
        assert job.result["rung"]

    def test_resubmit_is_a_cache_hit_observed_in_counters(self, service):
        request = AnalyzeRequest(program=_program())
        status, job = service.submit(request)
        assert status == "accepted" and job.wait(30)
        before = _counters()
        status, result = service.submit(request)
        assert status == "hit"
        assert result == job.result
        after = _counters()
        # the acceptance criterion: the hit is *visible* in obs counters
        assert after.get("serve.served_from_cache", 0) == \
            before.get("serve.served_from_cache", 0) + 1
        assert after.get("serve.accepted", 0) == before.get("serve.accepted", 0)

    def test_parse_error_is_rejected_not_queued(self, service):
        status, message = service.submit(AnalyzeRequest(program="this is not MPL ((("))
        assert status == "rejected"
        assert "parse error" in message
        assert _counters().get("serve.accepted", 0) == 0

    def test_identical_inflight_submissions_coalesce(self, tmp_path):
        service = _service(tmp_path, queue_size=8)
        try:
            source = _program(12)
            slow = AnalyzeRequest(program=source, test_fault={"kind": "sleep", "sec": 0.3})
            status, first = service.submit(slow)
            assert status == "accepted"
            status, second = service.submit(AnalyzeRequest(program=source))
            assert status == "accepted"
            assert second is first  # attached to the in-flight job
            assert _counters().get("serve.coalesced", 0) == 1
            assert first.wait(30)
        finally:
            service.stop()


class TestQoS:
    def test_tenant_budgets_clamp_requests(self, tmp_path):
        service = _service(
            tmp_path,
            tenants={
                "default": TenantBudget(deadline_sec=30.0),
                "small": TenantBudget(name="small", deadline_sec=2.0,
                                      max_steps=100, max_state_bytes=1 << 20),
            },
        )
        try:
            limits = service.effective_limits(
                AnalyzeRequest(program="x", tenant="small",
                               deadline_sec=999.0, max_steps=10_000,
                               max_state_bytes=1 << 30)
            )
            assert limits.deadline_sec == 2.0
            assert limits.max_steps == 100
            assert limits.max_state_bytes == 1 << 20
            # asking for *less* than the envelope is honored
            limits = service.effective_limits(
                AnalyzeRequest(program="x", tenant="small", deadline_sec=0.5)
            )
            assert limits.deadline_sec == 0.5
        finally:
            service.stop()

    def test_different_budgets_are_different_cache_keys(self, service):
        source = _program(13)
        status, job = service.submit(AnalyzeRequest(program=source, deadline_sec=10.0))
        assert status == "accepted" and job.wait(30)
        # same program, different budget: must NOT be served the old answer
        status, _payload = service.submit(AnalyzeRequest(program=source, deadline_sec=5.0))
        assert status == "accepted"


class TestShedding:
    def test_queue_full_sheds_with_retry_after(self, tmp_path):
        service = _service(tmp_path, queue_size=1, workers=1)
        try:
            blocker = AnalyzeRequest(
                program=_program(14), test_fault={"kind": "sleep", "sec": 0.5}
            )
            status, _job = service.submit(blocker)
            assert status == "accepted"
            time.sleep(0.1)  # let the worker pick it up and block
            # distinct programs so neither coalesces with the blocker
            fills, sheds = 0, 0
            for seed in range(20, 26):
                status, payload = service.submit(AnalyzeRequest(program=_program(seed)))
                if status == "shed":
                    sheds += 1
                    assert payload["reason"] == "queue_full"
                    assert payload["retry_after_sec"] >= 1
                else:
                    fills += 1
            assert sheds >= 1
            assert _counters().get("serve.shed.queue_full", 0) == sheds
        finally:
            service.stop()

    def test_shed_jobs_are_not_resurrected_by_recovery(self, tmp_path):
        service = _service(tmp_path, queue_size=1, workers=1)
        state_dir = service.state_dir
        try:
            blocker = AnalyzeRequest(
                program=_program(14), test_fault={"kind": "sleep", "sec": 0.5}
            )
            service.submit(blocker)
            time.sleep(0.1)
            shed_any = False
            for seed in range(30, 36):
                status, _ = service.submit(AnalyzeRequest(program=_program(seed)))
                shed_any = shed_any or status == "shed"
            assert shed_any
        finally:
            service.drain(10)
        pending, _done = JobJournal(state_dir / "journal.jsonl").fold()
        assert pending == {}  # every journaled job is accounted for

    def test_draining_service_refuses_new_work(self, service):
        service.begin_drain()
        status, payload = service.submit(AnalyzeRequest(program=_program()))
        assert status == "shed"
        assert payload["reason"] == "draining"


class TestDegradedModes:
    def test_pressure_degrades_to_baseline_ladder(self, tmp_path):
        # degrade_at=0 puts the service permanently "under pressure"
        service = _service(tmp_path, degrade_at=0.0)
        try:
            status, job = service.submit(AnalyzeRequest(program=_program(15)))
            assert status == "accepted" and job.wait(30)
            assert job.result["degraded"] == "overload"
            assert job.result["rung"] == "mpi-cfg"
            # degraded answers are NOT cached: a later calm submission
            # gets the full-precision path
            status, _ = service.submit(AnalyzeRequest(program=_program(15)))
            assert status == "accepted"
        finally:
            service.stop()

    def test_retries_exhausted_still_answers_with_baseline(self, tmp_path):
        service = _service(
            tmp_path, retry=RetryPolicy(max_retries=0, backoff_base_sec=0.01)
        )
        try:
            status, job = service.submit(
                AnalyzeRequest(program=_program(16), test_fault={"kind": "crash"})
            )
            assert status == "accepted"
            assert job.wait(30)
            assert "retries-exhausted" in job.result["degraded"]
            assert any(
                line.startswith("RETRY_EXHAUSTED")
                for line in job.result["service_diagnostics"]
            )
            assert job.result["rung"] == "mpi-cfg"  # a real (wide) answer
            assert _counters().get("serve.degraded.terminal", 0) == 1
        finally:
            service.stop()

    def test_faults_require_opt_in(self, tmp_path):
        service = _service(tmp_path)
        service.config.allow_test_faults = False
        try:
            status, job = service.submit(
                AnalyzeRequest(program=_program(17), test_fault={"kind": "crash"})
            )
            assert status == "accepted" and job.wait(30)
            assert "degraded" not in job.result  # the fault was stripped
        finally:
            service.stop()


class TestRecovery:
    def test_journaled_pending_jobs_run_on_startup(self, tmp_path):
        state_dir = tmp_path / "state"
        state_dir.mkdir()
        journal = JobJournal(state_dir / "journal.jsonl")
        journal.append(
            {"event": "accepted", "job": "orphan01", "kind": "analyze",
             "request": {"program": _program(18)}}
        )
        journal.close()
        service = AnalysisService(
            ServiceConfig(state_dir=state_dir, workers=1, isolation="inline")
        )
        service.start()
        try:
            job = service.get_job("orphan01")
            assert job is not None
            assert job.wait(30)
            assert job.result["confidence"] in ("exact", "partial")
            assert _counters().get("serve.recovered_jobs", 0) == 1
        finally:
            service.stop()

    def test_done_jobs_stay_addressable_after_restart(self, tmp_path):
        service = _service(tmp_path)
        status, job = service.submit(AnalyzeRequest(program=_program(19)))
        assert status == "accepted" and job.wait(30)
        job_id, result = job.id, job.result
        service.stop()
        reborn = AnalysisService(
            ServiceConfig(state_dir=tmp_path / "state", workers=1, isolation="inline")
        )
        reborn.start()
        try:
            replay = reborn.get_job(job_id)
            assert replay is not None and replay.done.is_set()
            assert replay.result == result
        finally:
            reborn.stop()

    def test_unparseable_journal_records_are_dropped(self, tmp_path):
        state_dir = tmp_path / "state"
        state_dir.mkdir()
        journal = JobJournal(state_dir / "journal.jsonl")
        journal.append(
            {"event": "accepted", "job": "bad01", "kind": "analyze",
             "request": {"program": 42}}
        )
        journal.close()
        service = AnalysisService(
            ServiceConfig(state_dir=state_dir, workers=1, isolation="inline")
        )
        service.start()
        try:
            assert service.get_job("bad01") is None
            assert _counters().get("serve.recovery_dropped", 0) == 1
        finally:
            service.stop()


class TestBatch:
    def test_batch_mixes_hits_and_misses(self, service):
        source_a, source_b = _program(21), _program(22)
        status, job = service.submit(AnalyzeRequest(program=source_a))
        assert status == "accepted" and job.wait(30)
        status, job = service.submit_batch(
            [AnalyzeRequest(program=source_a), AnalyzeRequest(program=source_b),
             AnalyzeRequest(program="((broken")]
        )
        assert status == "accepted"
        assert job.wait(60)
        results = job.result["results"]
        assert results[0]["cache"] == "hit"
        assert results[1]["cache"] == "miss"
        assert "error" in results[2]
        # the batch miss is now cached for single submissions too
        status, _ = service.submit(AnalyzeRequest(program=source_b))
        assert status == "hit"

    def test_all_hit_batch_answers_inline(self, service):
        source = _program(23)
        status, job = service.submit(AnalyzeRequest(program=source))
        assert status == "accepted" and job.wait(30)
        status, payload = service.submit_batch([AnalyzeRequest(program=source)])
        assert status == "hit"
        assert payload["results"][0]["cache"] == "hit"


class TestDrain:
    def test_drain_completes_accepted_work(self, tmp_path):
        service = _service(tmp_path, queue_size=8)
        jobs = []
        for seed in range(40, 44):
            status, job = service.submit(AnalyzeRequest(program=_program(seed)))
            assert status == "accepted"
            jobs.append(job)
        assert service.drain(timeout=60)
        assert all(job.done.is_set() for job in jobs)
        pending, _done = JobJournal(service.state_dir / "journal.jsonl").fold()
        assert pending == {}

    def test_stats_document_shape(self, service):
        service.submit(AnalyzeRequest(program=_program(45)))
        stats = service.stats()
        assert {"queue_depth", "jobs", "cache", "breaker", "counters"} <= set(stats)
        json.dumps(stats)  # must be JSON-serializable for /stats
