"""The HTTP surface: route/status-code mapping over an in-thread server."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.corpus.generator import generate
from repro.serve.daemon import AnalysisService, ServiceConfig
from repro.serve.http import AnalysisHTTPServer
from repro.serve.retry import RetryPolicy


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(
        state_dir=tmp_path / "state",
        workers=1,
        isolation="inline",
        allow_test_faults=True,
        queue_size=8,
        retry=RetryPolicy(max_retries=0, backoff_base_sec=0.01),
    )
    service = AnalysisService(config)
    service.start()
    httpd = AnalysisHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, service
    httpd.shutdown()
    httpd.server_close()
    service.stop()


def _get(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _post(base: str, path: str, document: dict):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(document).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def test_analyze_miss_then_hit(server):
    base, _service = server
    source = generate(31).source
    code, body, _ = _post(base, "/v1/analyze", {"program": source})
    assert code == 200
    assert body["cache"] == "miss"
    assert body["result"]["confidence"] in ("exact", "partial")
    code, body, _ = _post(base, "/v1/analyze", {"program": source})
    assert code == 200
    assert body["cache"] == "hit"


def test_async_submit_then_poll(server):
    base, _service = server
    code, body, _ = _post(
        base, "/v1/analyze",
        {"program": generate(32).source, "wait": False},
    )
    assert code == 202
    job_id = body["job"]
    for _ in range(300):
        code, body, _ = _get(base, f"/v1/jobs/{job_id}")
        if code == 200:
            break
    assert code == 200
    assert body["state"] == "done"
    assert body["result"]["confidence"] in ("exact", "partial")


def test_parse_error_is_400(server):
    base, _service = server
    code, body, _ = _post(base, "/v1/analyze", {"program": "((nope"})
    assert code == 400
    assert "parse error" in body["error"]


def test_malformed_request_bodies_are_400(server):
    base, _service = server
    code, body, _ = _post(base, "/v1/analyze", {"not_program": 1})
    assert code == 400
    request = urllib.request.Request(
        base + "/v1/analyze", data=b"{not json", method="POST",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400


def test_unknown_routes_are_404(server):
    base, _service = server
    assert _get(base, "/nope")[0] == 404
    assert _post(base, "/v1/nope", {})[0] == 404
    assert _get(base, "/v1/jobs/doesnotexist")[0] == 404


def test_health_ready_stats(server):
    base, service = server
    assert _get(base, "/healthz")[0] == 200
    assert _get(base, "/readyz")[0] == 200
    code, stats, _ = _get(base, "/stats")
    assert code == 200
    assert "queue_depth" in stats and "cache" in stats
    service.begin_drain()
    code, body, _ = _get(base, "/readyz")
    assert code == 503
    assert body["status"] == "draining"
    # healthz stays green while draining: the process is still alive
    assert _get(base, "/healthz")[0] == 200


def test_draining_submissions_are_503(server):
    base, service = server
    service.begin_drain()
    code, body, headers = _post(base, "/v1/analyze", {"program": generate(33).source})
    assert code == 503
    assert "Retry-After" in headers


def test_queue_full_is_429_with_retry_after(tmp_path):
    config = ServiceConfig(
        state_dir=tmp_path / "state",
        workers=1,
        isolation="inline",
        allow_test_faults=True,
        queue_size=1,
    )
    service = AnalysisService(config)
    service.start()
    httpd = AnalysisHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    try:
        _post(base, "/v1/analyze", {
            "program": generate(34).source,
            "test_fault": {"kind": "sleep", "sec": 0.5},
            "wait": False,
        })
        shed = 0
        for seed in range(35, 41):
            code, body, headers = _post(
                base, "/v1/analyze",
                {"program": generate(seed).source, "wait": False},
            )
            if code == 429:
                shed += 1
                assert "Retry-After" in headers
                assert body["error"] == "overloaded"
        assert shed >= 1
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.stop()


def test_batch_endpoint(server):
    base, _service = server
    source_a, source_b = generate(42).source, generate(43).source
    _post(base, "/v1/analyze", {"program": source_a})
    code, body, _ = _post(base, "/v1/batch", {"programs": [source_a, source_b]})
    assert code == 200
    caches = [item.get("cache") for item in body["results"]]
    assert caches == ["hit", "miss"]
    code, body, _ = _post(base, "/v1/batch", {"programs": []})
    assert code == 400
