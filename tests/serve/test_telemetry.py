"""The service telemetry plane end to end: /metrics exposition over a
live daemon, chunked streaming diagnostics, and cross-process trace
stitching.  These are the integration counterparts of the unit tests in
``tests/obs/test_metrics.py`` / ``tests/obs/test_trace.py``."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.corpus.generator import generate
from repro.obs import metrics, trace
from repro.serve.daemon import AnalysisService, ServiceConfig
from repro.serve.http import AnalysisHTTPServer
from repro.serve.retry import RetryPolicy


def _make_server(tmp_path, isolation: str):
    config = ServiceConfig(
        state_dir=tmp_path / "state",
        workers=1,
        isolation=isolation,
        queue_size=8,
        retry=RetryPolicy(max_retries=1, backoff_base_sec=0.01),
    )
    service = AnalysisService(config)
    service.start()
    httpd = AnalysisHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    return base, service, httpd


@pytest.fixture
def inline_server(tmp_path):
    base, service, httpd = _make_server(tmp_path, "inline")
    yield base, service
    httpd.shutdown()
    httpd.server_close()
    service.stop()


@pytest.fixture
def process_server(tmp_path):
    base, service, httpd = _make_server(tmp_path, "process")
    yield base, service
    httpd.shutdown()
    httpd.server_close()
    service.stop()


def _post(base: str, document: dict, timeout: float = 60.0):
    request = urllib.request.Request(
        base + "/v1/analyze",
        data=json.dumps(document).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _scrape(base: str):
    with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
        text = response.read().decode("utf-8")
        content_type = response.headers.get("Content-Type")
    return text, content_type


class TestMetricsEndpoint:
    def test_scrape_is_parseable_with_required_series(self, inline_server):
        base, _service = inline_server
        code, body = _post(base, {"program": generate(61).source, "wait": True})
        assert code == 200
        text, content_type = _scrape(base)
        assert content_type == metrics.CONTENT_TYPE
        assert metrics.validate_exposition(text) == []
        samples = metrics.parse_exposition(text)
        assert samples["repro_up"] == 1.0
        # the RED series and the service gauges the dashboard needs
        assert samples["repro_serve_cache_resident_entries"] >= 1.0
        assert "repro_serve_queue_depth" in samples
        latency = [
            key for key in samples
            if key.startswith("repro_serve_http_latency_ms") and "analyze" in key
        ]
        assert latency, "per-endpoint latency summary missing"
        assert any(
            key.startswith("repro_serve_http_requests_total") for key in samples
        )
        assert any(
            key.startswith("repro_serve_tenant_latency_ms") for key in samples
        )

    def test_worker_process_counters_survive_to_scrape(self, process_server):
        """Regression: engine counters from a process-isolated attempt
        must be merged home and appear nonzero in /metrics — before this
        plane existed they died with the worker."""
        base, _service = process_server
        code, body = _post(base, {"program": generate(62).source, "wait": True})
        assert code == 200
        assert body["cache"] == "miss"
        samples = metrics.parse_exposition(_scrape(base)[0])
        assert samples.get("repro_engine_steps_total", 0.0) > 0.0

    def test_scrape_counts_itself(self, inline_server):
        base, _service = inline_server
        _scrape(base)
        samples = metrics.parse_exposition(_scrape(base)[0])
        assert samples["repro_serve_metrics_scrapes_total"] >= 1.0


class TestStreaming:
    def _stream(self, base: str, document: dict, timeout: float = 60.0):
        request = urllib.request.Request(
            base + "/v1/analyze",
            data=json.dumps({**document, "stream": True}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        events = []
        with urllib.request.urlopen(request, timeout=timeout) as response:
            assert response.status == 200
            assert "x-ndjson" in response.headers.get("Content-Type", "")
            for line in response:
                events.append(json.loads(line))
        return events

    def test_event_sequence_miss(self, inline_server):
        base, _service = inline_server
        events = self._stream(base, {"program": generate(63).source})
        kinds = [event["event"] for event in events]
        assert kinds[0] == "admission"
        assert events[0]["cache"] == "miss"
        assert events[0]["trace"]
        assert kinds[-1] == "result"
        assert events[-1]["result"]["confidence"] in ("exact", "partial")
        # at least one rung announcement precedes the result
        assert "rung" in kinds[1:-1]
        rung_index = kinds.index("rung")
        progress = [k for k in kinds if k == "progress"]
        assert progress, "engine heartbeats missing from the stream"
        assert kinds.index("progress") > rung_index

    def test_event_sequence_hit(self, inline_server):
        base, _service = inline_server
        source = generate(64).source
        _post(base, {"program": source, "wait": True})
        events = self._stream(base, {"program": source})
        assert events[0]["event"] == "admission"
        assert events[0]["cache"] == "hit"
        assert events[-1]["event"] == "result"

    def test_stream_and_plain_agree(self, inline_server):
        base, _service = inline_server
        source = generate(65).source
        events = self._stream(base, {"program": source})
        code, body = _post(base, {"program": source, "wait": True})
        assert code == 200
        assert (
            events[-1]["result"]["matches"] == body["result"]["matches"]
        )


class TestTraceStitching:
    def test_response_carries_trace_id(self, inline_server):
        base, _service = inline_server
        code, body = _post(base, {"program": generate(66).source, "wait": True})
        assert code == 200
        assert isinstance(body.get("trace"), str) and body["trace"]

    def test_client_supplied_trace_id_wins(self, inline_server):
        base, _service = inline_server
        request = urllib.request.Request(
            base + "/v1/analyze",
            data=json.dumps(
                {"program": generate(67).source, "wait": True}
            ).encode(),
            headers={
                "Content-Type": "application/json",
                "X-Repro-Trace": "my-correlation-id",
            },
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            body = json.loads(response.read())
        assert body["trace"] == "my-correlation-id"

    def test_multiprocess_shards_stitch_into_one_trace(
        self, process_server, tmp_path
    ):
        """A process-isolated attempt writes its own span shard; the
        stitched trace validates, spans all carry the request's trace id,
        and parent/child nesting is acyclic across process boundaries."""
        base, service = process_server
        code, body = _post(base, {"program": generate(68).source, "wait": True})
        assert code == 200
        trace_id = body["trace"]
        sink = service.config.state_dir / "traces"
        # span records are eventually consistent: the daemon's serve.job
        # record lands just *after* the waiter is released, so poll briefly
        deadline = time.monotonic() + 10.0
        while True:
            shards = sorted(sink.glob(f"{trace_id}-*.jsonl"))
            names = {
                json.loads(line)["name"]
                for shard in shards
                for line in shard.read_text().splitlines()
            }
            if len(shards) >= 2 and {"serve.job", "serve.attempt"} <= names:
                break
            assert time.monotonic() < deadline, (
                f"expected daemon and attempt worker shards, got {names}"
            )
            time.sleep(0.05)
        for shard in shards:
            for line in shard.read_text().splitlines():
                assert json.loads(line)["trace"] == trace_id
        document = trace.stitch(sink, trace_id)  # validates internally
        spans = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        assert {e["pid"] for e in spans} >= {1, 2}
        names = {e["name"] for e in spans}
        assert "serve.job" in names
        assert "serve.attempt" in names
        # acyclic parentage, spans reachable across the process boundary
        parent_of = {e["args"]["span"]: e["args"].get("parent") for e in spans}
        for start in parent_of:
            node, seen = start, set()
            while node in parent_of:
                assert node not in seen
                seen.add(node)
                node = parent_of[node]

    def test_sharded_pool_workers_write_shards(self, tmp_path):
        """ShardedEngine pool workers receive the context in their task
        payloads and contribute their own span shards."""
        from repro.analyses.simple_symbolic import SimpleSymbolicClient
        from repro.core.engine import EngineLimits
        from repro.core.shard import ShardedEngine
        from repro.lang.cfg import build_cfg

        sink = tmp_path / "traces"
        trace.configure_sink(sink, "parent")
        ctx = trace.mint()
        program = generate(69).parse()
        with trace.activate(ctx):
            with trace.span("test.root"):
                result = ShardedEngine(
                    build_cfg(program),
                    SimpleSymbolicClient(),
                    EngineLimits(deadline_sec=20.0),
                    jobs=2,
                ).run()
        assert result.steps > 0
        records = trace.load_spans(sink, ctx.trace_id)
        names = {record["name"] for record in records}
        assert "test.root" in names
        assert "engine.shard.run" in names
        worker_pids = {
            record["pid"] for record in records
            if record["name"] == "engine.shard.run"
        }
        assert worker_pids, "pool workers recorded no spans"
        document = trace.stitch(sink, ctx.trace_id)
        assert len({e["pid"] for e in document["traceEvents"]}) >= 2
