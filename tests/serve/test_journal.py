"""The crash-safe job journal: durability, torn-line tolerance,
fold/recovery semantics, and compaction."""

from __future__ import annotations

import json

from repro.serve.journal import JobJournal


def _accept(journal, job_id, program="x = 1"):
    journal.append(
        {"event": "accepted", "job": job_id, "kind": "analyze",
         "request": {"program": program}}
    )


def test_append_then_load_roundtrip(tmp_path):
    journal = JobJournal(tmp_path / "journal.jsonl")
    _accept(journal, "a")
    journal.append({"event": "done", "job": "a", "result": {"ok": True}})
    records = journal.load()
    assert [r["event"] for r in records] == ["accepted", "done"]


def test_torn_trailing_line_is_dropped(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    _accept(journal, "a")
    journal.append({"event": "done", "job": "a", "result": None})
    journal.close()
    # simulate a crash mid-append: a half-written trailing record
    with open(path, "a") as handle:
        handle.write('{"event": "accepted", "job": "b", "requ')
    records = JobJournal(path).load()
    assert [r["job"] for r in records] == ["a", "a"]


def test_fold_separates_pending_from_done(tmp_path):
    journal = JobJournal(tmp_path / "journal.jsonl")
    _accept(journal, "finished")
    _accept(journal, "inflight")
    journal.append({"event": "started", "job": "inflight", "attempt": 0})
    journal.append({"event": "done", "job": "finished", "result": {"ok": True}})
    pending, done = journal.fold()
    assert set(pending) == {"inflight"}
    assert set(done) == {"finished"}
    assert pending["inflight"]["request"]["program"] == "x = 1"


def test_compact_keeps_only_the_live_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    for index in range(5):
        job_id = f"job{index}"
        _accept(journal, job_id)
        journal.append({"event": "started", "job": job_id, "attempt": 0})
        journal.append({"event": "retry", "job": job_id, "attempt": 0, "error": "x"})
        journal.append({"event": "done", "job": job_id, "result": {}})
    _accept(journal, "pending")
    kept = journal.compact()
    # 5 done records + 1 pending accepted; started/retry noise dropped
    assert kept == 6
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 6
    events = [json.loads(line)["event"] for line in lines]
    assert events.count("done") == 5
    assert events.count("accepted") == 1
    # folding the compacted journal gives the same recovery picture
    pending, done = JobJournal(path).fold()
    assert set(pending) == {"pending"}
    assert len(done) == 5


def test_missing_journal_loads_empty(tmp_path):
    journal = JobJournal(tmp_path / "nope.jsonl")
    assert journal.load() == []
    assert journal.fold() == ({}, {})


def test_append_after_compact(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    _accept(journal, "a")
    journal.compact()
    _accept(journal, "b")
    pending, _done = journal.fold()
    assert set(pending) == {"a", "b"}
