"""Kill-and-restart: SIGKILL the real daemon at every phase of a job's
life and prove that no accepted job is ever lost.

Each scenario runs an actual ``repro serve`` subprocess (process
isolation, real HTTP, real fsyncs), SIGKILLs it at a chosen phase —
after ``accepted`` hits the journal, while the job is ``started``, and
after ``done`` — restarts it on the same state directory, and verifies:

* the in-flight job is re-queued, finishes, and its result is served
  under its *original* job id;
* a resubmission of the completed program is a cache hit (verified
  through the daemon's own obs counters via ``/stats``);
* completed results survive the restart byte-for-byte.

The hang during the "started" phase is deterministic: the job carries a
``hang_if_missing`` fault directive, so the first daemon's worker blocks
until the test touches the marker file — which it only does after the
restart.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.corpus.generator import generate

REPO_ROOT = Path(__file__).resolve().parents[2]


class Daemon:
    """A real ``repro serve`` subprocess on a shared state directory."""

    def __init__(self, state_dir: Path):
        self.state_dir = state_dir
        self.process = None
        self.base = None

    def start(self, extra_args=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--state-dir", str(self.state_dir),
                "--port", "0", "--workers", "1",
                "--allow-test-faults", "--max-retries", "0",
                "--job-timeout", "60",
                *extra_args,
            ],
            env=env,
            cwd=str(REPO_ROOT),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        discovery = self.state_dir / "daemon.json"
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if discovery.exists():
                try:
                    doc = json.loads(discovery.read_text())
                except ValueError:
                    time.sleep(0.05)
                    continue
                if doc.get("pid") == self.process.pid:
                    self.base = f"http://{doc['host']}:{doc['port']}"
                    try:
                        self.get("/healthz")
                        return self
                    except OSError:
                        pass
            if self.process.poll() is not None:
                raise RuntimeError("daemon exited during startup")
            time.sleep(0.05)
        raise RuntimeError("daemon did not come up")

    def sigkill(self):
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10)

    def sigterm(self):
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=30)

    def stop(self):
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)

    # -- tiny HTTP client ------------------------------------------------------

    def get(self, path: str):
        with urllib.request.urlopen(self.base + path, timeout=30) as response:
            return response.status, json.loads(response.read())

    def post(self, path: str, document: dict):
        request = urllib.request.Request(
            self.base + path, data=json.dumps(document).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def journal_events(self):
        path = self.state_dir / "journal.jsonl"
        if not path.exists():
            return []
        events = []
        for line in path.read_text().splitlines():
            try:
                events.append(json.loads(line))
            except ValueError:
                pass
        return events

    def wait_for_event(self, event: str, job_id: str, timeout: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for record in self.journal_events():
                if record.get("event") == event and record.get("job") == job_id:
                    return True
            time.sleep(0.05)
        return False

    def poll_job(self, job_id: str, timeout: float = 60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            code, body = self.get(f"/v1/jobs/{job_id}")
            if code == 200:
                return body
            time.sleep(0.1)
        raise AssertionError(f"job {job_id} did not complete in {timeout}s")


@pytest.fixture
def daemon(tmp_path):
    instance = Daemon(tmp_path / "state")
    yield instance
    instance.stop()


def test_sigkill_while_job_runs_then_recover(daemon):
    """Phase: after ``started``.  The worker is wedged on the fault; the
    daemon dies; the restarted daemon replays the journal and finishes
    the job under its original id."""
    marker = daemon.state_dir / "unblock.marker"
    daemon.start()
    source = generate(101).source
    code, body = daemon.post(
        "/v1/analyze",
        {
            "program": source, "wait": False,
            "test_fault": {"kind": "hang_if_missing",
                           "path": str(marker), "sec": 45},
        },
    )
    assert code == 202
    job_id = body["job"]
    assert daemon.wait_for_event("started", job_id)
    daemon.sigkill()

    marker.touch()  # the replayed execution must not hang
    daemon.start()
    result = daemon.poll_job(job_id)
    assert result["state"] == "done"
    assert result["result"]["confidence"] in ("exact", "partial")

    # resubmitting the recovered program is a cache hit, visible in the
    # daemon's own counters
    code, body = daemon.post("/v1/analyze", {"program": source})
    assert code == 200 and body["cache"] == "hit"
    _code, stats = daemon.get("/stats")
    assert stats["counters"].get("serve.served_from_cache", 0) >= 1
    assert stats["counters"].get("serve.recovered_jobs", 0) >= 1


def test_sigkill_after_accept_before_start(daemon):
    """Phase: between ``accepted`` and ``started``.  A one-worker daemon
    wedged on a hanging job accumulates a queued second job; the SIGKILL
    lands while that job has only its accepted record."""
    marker = daemon.state_dir / "unblock.marker"
    daemon.start()
    blocker = generate(102).source
    queued = generate(103).source
    daemon.post(
        "/v1/analyze",
        {"program": blocker, "wait": False,
         "test_fault": {"kind": "hang_if_missing", "path": str(marker), "sec": 45}},
    )
    code, body = daemon.post("/v1/analyze", {"program": queued, "wait": False})
    assert code == 202
    queued_id = body["job"]
    assert daemon.wait_for_event("accepted", queued_id)
    assert not any(
        r.get("event") == "started" and r.get("job") == queued_id
        for r in daemon.journal_events()
    )
    daemon.sigkill()

    marker.touch()
    daemon.start()
    result = daemon.poll_job(queued_id, timeout=90)
    assert result["state"] == "done"
    assert result["result"]["confidence"] in ("exact", "partial")


def test_sigkill_after_done_keeps_result_and_cache(daemon):
    """Phase: after ``done``.  Completed results and their cache entries
    survive the crash byte-for-byte."""
    daemon.start()
    source = generate(104).source
    code, body = daemon.post("/v1/analyze", {"program": source})
    assert code == 200 and body["cache"] == "miss"
    job_id, result = body["job"], body["result"]
    daemon.sigkill()

    daemon.start()
    replay = daemon.poll_job(job_id, timeout=10)
    assert replay["result"] == result
    code, body = daemon.post("/v1/analyze", {"program": source})
    assert code == 200 and body["cache"] == "hit"
    assert body["result"] == result


def test_sigterm_drains_gracefully(daemon):
    """SIGTERM (not a crash): accepted work finishes, the journal's
    pending set empties, the process exits 0, readyz flips first."""
    daemon.start()
    source = generate(105).source
    code, body = daemon.post("/v1/analyze", {"program": source, "wait": False})
    assert code == 202
    assert daemon.sigterm() == 0
    events = daemon.journal_events()
    done = {r["job"] for r in events if r.get("event") == "done"}
    accepted = {r["job"] for r in events if r.get("event") == "accepted"}
    assert accepted <= done  # nothing accepted was abandoned
    assert not (daemon.state_dir / "daemon.json").exists()
