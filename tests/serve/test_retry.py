"""Retry backoff bounds and the per-rung circuit breaker state machine."""

from __future__ import annotations

import random

from repro.serve.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_delay_stays_within_the_jitter_window(self):
        policy = RetryPolicy(backoff_base_sec=0.1, backoff_cap_sec=1.0)
        rng = random.Random(42)
        for attempt in range(8):
            ceiling = min(1.0, 0.1 * (2 ** attempt))
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert 0.0 <= delay <= ceiling

    def test_ceiling_grows_exponentially_then_caps(self):
        policy = RetryPolicy(backoff_base_sec=0.1, backoff_cap_sec=0.5)

        class _One:
            def random(self):
                return 1.0

        assert policy.delay(0, _One()) == 0.1
        assert policy.delay(1, _One()) == 0.2
        assert policy.delay(10, _One()) == 0.5  # capped


class TestCircuitBreaker:
    def _clocked(self, threshold=3, cooldown=10.0):
        state = {"now": 0.0}
        breaker = CircuitBreaker(
            threshold=threshold, cooldown_sec=cooldown, clock=lambda: state["now"]
        )
        return breaker, state

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self._clocked(threshold=3)
        for _ in range(2):
            breaker.record_failure("cartesian")
            assert breaker.allows("cartesian")
        breaker.record_failure("cartesian")
        assert breaker.state("cartesian") == OPEN
        assert not breaker.allows("cartesian")

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self._clocked(threshold=3)
        breaker.record_failure("r")
        breaker.record_failure("r")
        breaker.record_success("r")
        breaker.record_failure("r")
        breaker.record_failure("r")
        assert breaker.state("r") == CLOSED

    def test_half_open_probe_then_close_on_success(self):
        breaker, clock = self._clocked(threshold=1, cooldown=10.0)
        breaker.record_failure("r")
        assert not breaker.allows("r")
        clock["now"] = 11.0
        assert breaker.allows("r")  # the single probe
        assert breaker.state("r") == HALF_OPEN
        assert not breaker.allows("r")  # probe already out
        breaker.record_success("r")
        assert breaker.state("r") == CLOSED
        assert breaker.allows("r")

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self._clocked(threshold=1, cooldown=10.0)
        breaker.record_failure("r")
        clock["now"] = 11.0
        assert breaker.allows("r")
        breaker.record_failure("r")
        assert breaker.state("r") == OPEN
        assert not breaker.allows("r")
        # the cooldown restarts from the reopen
        clock["now"] = 20.0
        assert not breaker.allows("r")
        clock["now"] = 21.5
        assert breaker.allows("r")

    def test_circuits_are_independent_per_rung(self):
        breaker, _ = self._clocked(threshold=1)
        breaker.record_failure("cartesian")
        assert not breaker.allows("cartesian")
        assert breaker.allows("simple-symbolic")
        assert breaker.snapshot() == {"cartesian": OPEN, "simple-symbolic": CLOSED}
