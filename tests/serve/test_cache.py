"""The content-addressed result cache: keying soundness, durability,
warm-start snapshots, and the LRU mirror."""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import cfg_fingerprint
from repro.core.driver import analyze_with_fallback
from repro.core.engine import EngineLimits
from repro.corpus.generator import generate
from repro.lang import parse
from repro.lang.cfg import build_cfg
from repro.serve.cache import ENTRY_FORMAT, ResultCache, compute_key, render_report


def _fingerprint(seed: int) -> str:
    return cfg_fingerprint(build_cfg(parse(generate(seed).source)))


class TestCacheKeySoundness:
    """Distinct analysis questions must get distinct keys — a collision
    would serve one program's answer for another."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_key_is_deterministic(self, seed):
        limits = EngineLimits(deadline_sec=5.0)
        fp = _fingerprint(seed)
        assert compute_key(fp, "ladder", limits) == compute_key(fp, "ladder", limits)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=1, max_value=5_000),
    )
    def test_distinct_programs_never_collide(self, seed_a, delta):
        seed_b = seed_a + delta
        fp_a, fp_b = _fingerprint(seed_a), _fingerprint(seed_b)
        limits = EngineLimits()
        key_a = compute_key(fp_a, "ladder", limits)
        key_b = compute_key(fp_b, "ladder", limits)
        if fp_a == fp_b:
            # structurally identical generations legitimately share a key
            assert key_a == key_b
        else:
            assert key_a != key_b

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.sampled_from(["max_steps", "deadline_sec", "max_state_bytes", "max_psets"]),
    )
    def test_changed_limits_change_the_key(self, seed, knob):
        fp = _fingerprint(seed)
        base = EngineLimits(deadline_sec=10.0, max_state_bytes=1 << 20)
        changed = {
            "max_steps": EngineLimits(max_steps=base.max_steps * 2,
                                      deadline_sec=10.0, max_state_bytes=1 << 20),
            "deadline_sec": EngineLimits(deadline_sec=20.0, max_state_bytes=1 << 20),
            "max_state_bytes": EngineLimits(deadline_sec=10.0, max_state_bytes=1 << 21),
            "max_psets": EngineLimits(deadline_sec=10.0, max_state_bytes=1 << 20,
                                      max_psets=base.max_psets + 1),
        }[knob]
        assert compute_key(fp, "ladder", base) != compute_key(fp, "ladder", changed)

    def test_changed_ladder_changes_the_key(self):
        fp = _fingerprint(0)
        limits = EngineLimits()
        assert compute_key(fp, "default", limits) != compute_key(fp, "baseline", limits)


class TestResultCache:
    def _store_one(self, cache, seed=3, limits=None):
        limits = limits or EngineLimits()
        program = parse(generate(seed).source)
        fp = cfg_fingerprint(build_cfg(program))
        report = analyze_with_fallback(program, limits=limits)
        key = compute_key(fp, "ladder", limits)
        cache.store(key, fp, "ladder", limits, render_report(report))
        return key, fp

    def test_store_then_lookup(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, _fp = self._store_one(cache)
        entry = cache.lookup(key)
        assert entry is not None
        assert entry["result"]["confidence"] in ("exact", "partial", "gave_up")

    def test_lookup_survives_restart(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, _fp = self._store_one(cache)
        reborn = ResultCache(tmp_path)
        assert reborn.lookup(key) is not None

    def test_malformed_entry_files_are_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, _fp = self._store_one(cache)
        (tmp_path / "garbage.json").write_text("{not json")
        (tmp_path / "wrong.json").write_text(json.dumps({"format": "other/1"}))
        reborn = ResultCache(tmp_path)
        assert reborn.lookup(key) is not None
        assert reborn.lookup("missing") is None

    def test_lru_eviction_falls_back_to_disk(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1)
        key_a, _ = self._store_one(cache, seed=3)
        key_b, _ = self._store_one(cache, seed=4)
        # key_a was evicted from the mirror but must still hit via disk
        assert cache.lookup(key_a) is not None
        assert cache.lookup(key_b) is not None

    def test_warm_snapshot_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        limits = EngineLimits(max_steps=5)  # trips the budget -> snapshot
        program = parse(generate(7).source)
        fp = cfg_fingerprint(build_cfg(program))
        report = analyze_with_fallback(program, limits=limits)
        outcome = report.rungs[0]
        snap = getattr(outcome.result, "snapshot", None)
        if snap is None:
            return  # this program finished inside 5 steps; nothing to carry
        key = compute_key(fp, "ladder", limits)
        cache.store(key, fp, "ladder", limits, render_report(report), snap.payload)
        client = snap.payload.get("client")
        warm = cache.warm_snapshot(fp, client)
        assert warm is not None
        assert warm.payload["cfg"] == fp
        assert cache.warm_snapshot(fp, "NoSuchClient") is None
        assert cache.warm_snapshot("0" * 64, client) is None

    def test_entry_format_is_versioned(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, _fp = self._store_one(cache)
        document = json.loads((tmp_path / f"{key}.json").read_text())
        assert document["format"] == ENTRY_FORMAT
        assert document["key"] == key
