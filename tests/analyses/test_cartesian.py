"""Section VIII client tests: NAS-CG transpose matching via HSMs."""

import pytest

from repro.analyses.cartesian import CartesianClient, analyze_cartesian
from repro.lang import parse, programs
from repro.runtime import run_program
from tests.conftest import corpus_inputs


class TestTransposes:
    @pytest.mark.parametrize(
        "name,num_procs",
        [
            ("transpose_square", 4),
            ("transpose_square", 9),
            ("transpose_square", 16),
            ("transpose_rect", 8),
            ("transpose_rect", 18),
        ],
    )
    def test_static_matches_cover_dynamic(self, name, num_procs):
        spec = programs.get(name)
        result, cfg, _ = analyze_cartesian(spec)
        assert not result.gave_up, result.give_up_reason
        inputs = corpus_inputs(name, num_procs)
        trace = run_program(spec.parse(), num_procs, inputs=inputs, cfg=cfg)
        dynamic = set(trace.topology().node_edges)
        assert dynamic <= set(result.matches)
        assert set(result.matches) <= dynamic

    def test_whole_set_match_record(self):
        result, _, _ = analyze_cartesian(programs.get("transpose_square"))
        (record,) = result.match_records
        assert record.sender_desc == "[0..np - 1]"
        assert record.receiver_desc == "[0..np - 1]"

    def test_simple_client_cannot_match_transpose(self):
        """The Section VII client lacks HSMs: the transpose must defeat it
        (conservative give-up, no unsound match)."""
        from repro.analyses.simple_symbolic import SimpleSymbolicClient, analyze_program

        result, _, _ = analyze_program(
            programs.get("transpose_square"), SimpleSymbolicClient()
        )
        assert result.gave_up


class TestInvariantCollection:
    def test_asserts_seed_invariants(self):
        client = CartesianClient()
        result, _, client = analyze_cartesian(
            programs.get("transpose_square"), client
        )
        subs = client.invariants.substitutions
        assert "np" in subs
        assert "ncols" in subs

    def test_cartesian_handles_simple_corpus_too(self):
        """The HSM client extends (not replaces) the affine client."""
        for name in ["pingpong", "exchange_with_root", "shift_right"]:
            client = CartesianClient()
            result, cfg, _ = analyze_cartesian(programs.get(name), client)
            assert not result.gave_up, (name, result.give_up_reason)
            trace = run_program(programs.get(name).parse(), 8, cfg=cfg)
            assert trace.topology().node_edges <= result.matches


class TestRefusals:
    def test_non_involution_refused(self):
        """An exchange whose composition is not the identity must not match."""
        source = """
            nrows = input()
            ncols = input()
            assert np == ncols * nrows
            assert ncols == nrows
            send x -> (id + nrows) % np
            receive y <- (id % nrows) * nrows + id / nrows
        """
        result, _, _ = analyze_cartesian(parse(source))
        assert result.gave_up or not result.matches

    def test_missing_invariant_refused(self):
        """Without the grid asserts the HSM proofs cannot close."""
        source = """
            nrows = input()
            x = id
            send x -> (id % nrows) * nrows + id / nrows
            receive y <- (id % nrows) * nrows + id / nrows
        """
        result, _, _ = analyze_cartesian(parse(source))
        assert result.gave_up
