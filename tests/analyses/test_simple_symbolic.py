"""End-to-end tests of the Section VII client over the whole corpus.

The central soundness property: for every program the client is expected to
handle, the statically established match relation must cover (and, for these
deterministic programs, exactly equal) the interpreter's dynamic match
relation at every probe process count.
"""

import pytest

from repro.analyses.simple_symbolic import SimpleSymbolicClient, analyze_program
from repro.cgraph.namespaces import qualify
from repro.core.errors import GiveUp
from repro.lang import build_cfg, parse, programs
from repro.lang.ast import Assign, Num
from repro.lang.cfg import CFGNode, NodeKind
from repro.runtime import run_program

SIMPLE_CORPUS = [
    "pingpong",
    "broadcast_fanout",
    "gather_to_root",
    "scatter_from_root",
    "exchange_with_root",
    "shift_right",
    "pipeline_stages",
    "ring_shift_nowrap",
    "master_worker",
    "mdcask_full",
    "neighbor_exchange_1d",
    "sequential_only",
]


class TestCorpusConvergence:
    @pytest.mark.parametrize("name", SIMPLE_CORPUS)
    def test_analysis_converges(self, name):
        result, _, _ = analyze_program(programs.get(name))
        assert not result.gave_up, result.give_up_reason

    @pytest.mark.parametrize("name", SIMPLE_CORPUS)
    @pytest.mark.parametrize("num_procs", [4, 6, 9])
    def test_static_equals_dynamic(self, name, num_procs):
        result, cfg, _ = analyze_program(programs.get(name))
        trace = run_program(programs.get(name).parse(), num_procs, cfg=cfg)
        dynamic = set(trace.topology().node_edges)
        assert dynamic <= set(result.matches), "unsound: dynamic edge missed"
        assert set(result.matches) <= dynamic, "imprecise: spurious static edge"


class TestAffineConversion:
    def setup_method(self):
        self.client = SimpleSymbolicClient()

    def convert(self, source):
        return self.client.affine(parse(f"x = {source}").body[0].value, 3)

    def test_id_qualified(self):
        expr = self.convert("id + 1")
        assert expr.coeff(qualify(3, "id")) == 1
        assert expr.constant == 1

    def test_np_global(self):
        expr = self.convert("np - 1")
        assert expr.coeff("np") == 1

    def test_scaling(self):
        expr = self.convert("3 * i")
        assert expr.coeff(qualify(3, "i")) == 3

    def test_constant_folding_div(self):
        assert self.convert("7 / 2").as_constant() == 3

    def test_nonaffine_is_none(self):
        assert self.convert("id % np") is None
        assert self.convert("id * i") is None
        assert self.convert("input()") is None


class TestTransfer:
    def test_assign_to_id_rejected(self):
        client = SimpleSymbolicClient()
        state = client.initial()
        node = CFGNode(1, NodeKind.ASSIGN, Assign("id", Num(0)))
        with pytest.raises(GiveUp):
            client.transfer(state, 0, node)

    def test_assign_to_np_rejected(self):
        client = SimpleSymbolicClient()
        state = client.initial()
        node = CFGNode(1, NodeKind.ASSIGN, Assign("np", Num(0)))
        with pytest.raises(GiveUp):
            client.transfer(state, 0, node)

    def test_print_observation_recorded(self):
        client = SimpleSymbolicClient()
        result, cfg, client = analyze_program(programs.get("pingpong"), client)
        print_nodes = [
            n.node_id for n in cfg.nodes.values() if n.kind == NodeKind.PRINT
        ]
        for node_id in print_nodes:
            assert node_id in client.print_observations


class TestValuePropagation:
    def test_value_crosses_match(self):
        """The received variable is pinned to the sent constant."""
        client = SimpleSymbolicClient()
        result, cfg, client = analyze_program(programs.get("pingpong"), client)
        values = set()
        for node_id, observed in client.print_observations.items():
            values |= observed
        assert values == {5}

    def test_broadcast_value_propagates(self):
        source = """
            x = 9
            if id == 0 then
                for i = 1 to np - 1 do
                    send x -> i
                end
            else
                receive y <- 0
                print y
            end
        """
        client = SimpleSymbolicClient()
        result, cfg, client = analyze_program(parse(source), client)
        assert not result.gave_up
        print_node = next(
            n.node_id for n in cfg.nodes.values() if n.kind == NodeKind.PRINT
        )
        assert client.print_observations[print_node] == {9}


class TestMinNp:
    def test_min_np_configurable(self):
        client = SimpleSymbolicClient(min_np=16)
        state = client.initial()
        from repro.expr.linear import LinearExpr

        assert state.cg.entails_leq(LinearExpr.const(16), LinearExpr.var("np")) is True

    def test_shift_needs_enough_processes(self):
        """With only np >= 2 assumed, the three-role shift pattern cannot
        be resolved exactly (role sets may be empty) — a give-up, never a
        wrong match."""
        client = SimpleSymbolicClient(min_np=2)
        result, cfg, _ = analyze_program(programs.get("shift_right"), client)
        if not result.gave_up:
            trace = run_program(programs.get("shift_right").parse(), 8, cfg=cfg)
            assert trace.topology().node_edges <= result.matches


class TestBufferingModes:
    def test_rendezvous_only_still_handles_exchange(self):
        client = SimpleSymbolicClient(buffering=False)
        result, cfg, _ = analyze_program(programs.get("exchange_with_root"), client)
        assert not result.gave_up
        trace = run_program(programs.get("exchange_with_root").parse(), 6, cfg=cfg)
        assert trace.topology().node_edges <= result.matches

    def test_rendezvous_only_handles_pingpong(self):
        client = SimpleSymbolicClient(buffering=False)
        result, _, _ = analyze_program(programs.get("pingpong"), client)
        assert not result.gave_up

    def test_pending_budget_respected(self):
        client = SimpleSymbolicClient(max_pendings=1)
        result, _, _ = analyze_program(programs.get("mdcask_full"), client)
        # may or may not give up, but must never crash or mis-match
        if not result.gave_up:
            cfg = build_cfg(programs.get("mdcask_full").parse())


class TestDescribe:
    def test_pretty_strips_namespaces(self):
        client = SimpleSymbolicClient()
        state = client.initial()
        assert client.describe_pset(state, 0) == "[0..np - 1]"
