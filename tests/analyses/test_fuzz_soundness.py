"""Randomized soundness fuzzing: static matches must cover dynamic matches.

Generates random (but deadlock-free by construction) communication programs
in the affine fragment, runs the pCFG analysis, and checks the fundamental
soundness contract against the interpreter: whenever the analysis converges,
its match relation covers — and, by exactness, equals — the dynamic one.
"""

from hypothesis import given, settings, strategies as st

from repro.analyses.simple_symbolic import analyze_program
from repro.lang import parse
from repro.runtime import run_program


def _root_fanout(kind: str, value: int) -> str:
    """Root communicates with every worker; direction per kind."""
    if kind == "broadcast":
        return f"""
            x = {value}
            if id == 0 then
                for i = 1 to np - 1 do
                    send x -> i
                end
            else
                receive y <- 0
            end
        """
    return f"""
        x = {value}
        if id == 0 then
            for i = 1 to np - 1 do
                receive y <- i
            end
        else
            send x -> 0
        end
    """


class TestFuzzRootPatterns:
    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from(["broadcast", "gather"]),
        st.integers(-100, 100),
        st.sampled_from([4, 5, 9]),
    )
    def test_fanout_soundness(self, kind, value, num_procs):
        program = parse(_root_fanout(kind, value))
        result, cfg, _ = analyze_program(program)
        assert not result.gave_up
        trace = run_program(program, num_procs, cfg=cfg)
        dynamic = set(trace.topology().node_edges)
        assert dynamic == set(result.matches)


class TestFuzzPairwise:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(0, 3),
        st.integers(1, 3),
        st.integers(-9, 9),
        st.sampled_from([8, 11]),
    )
    def test_point_to_point_soundness(self, sender, distance, value, num_procs):
        """A single constant-endpoint message between two fixed ranks."""
        receiver = sender + distance
        source = f"""
            if id == {sender} then
                send {value} -> {receiver}
            elif id == {receiver} then
                receive y <- {sender}
                print y
            else
                skip
            end
        """
        program = parse(source)
        result, cfg, _ = analyze_program(program)
        trace = run_program(program, num_procs, cfg=cfg)
        dynamic = set(trace.topology().node_edges)
        if not result.gave_up:
            assert dynamic == set(result.matches)
            assert trace.prints[receiver] == [value]
        else:
            # give-up is allowed (e.g. receiver == min_np boundary); silence
            # about matches it did record must still be sound
            assert set(result.matches) <= dynamic

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.sampled_from([8, 13]))
    def test_shift_family_soundness(self, offset, num_procs):
        """Shift by a random offset with correctly paired expressions."""
        source = f"""
            x = id
            if id < np - {offset} then
                send x -> id + {offset}
            end
            if id >= {offset} then
                receive y <- id - {offset}
            end
        """
        program = parse(source)
        result, cfg, _ = analyze_program(program)
        trace = run_program(program, num_procs, cfg=cfg)
        dynamic = set(trace.topology().node_edges)
        if not result.gave_up:
            assert dynamic <= set(result.matches)
        else:
            assert set(result.matches) <= dynamic


class TestFuzzNeverUnsound:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4))
    def test_mismatched_offsets_never_matched(self, send_off, recv_off):
        """send -> id+a against receive <- id-b with a != b can never be an
        identity composition; the analysis must not match them."""
        if send_off == recv_off:
            return
        source = f"""
            if id == 0 then
                send 1 -> id + {send_off}
            elif id == {send_off + recv_off} then
                receive y <- id - {recv_off}
            else
                skip
            end
        """
        program = parse(source)
        result, cfg, _ = analyze_program(program)
        # such a program deadlocks dynamically; statically the only sound
        # answers are give-up or an empty match set
        assert result.gave_up or not result.matches
