"""Static communication-bug detector tests."""

import pytest

from repro.analyses.bugs import detect_bugs
from repro.lang import parse, programs
from repro.lang.cfg import NodeKind
from repro.runtime import run_program


class TestMessageLeak:
    def test_leak_detected(self):
        report, result, cfg = detect_bugs(programs.get("message_leak"))
        assert report.leaked_sends
        assert not report.is_clean()

    def test_leak_site_is_a_send(self):
        report, _, cfg = detect_bugs(programs.get("message_leak"))
        for node_id in report.leaked_sends:
            assert cfg.node(node_id).kind == NodeKind.SEND

    def test_leak_agrees_with_runtime(self):
        report, _, cfg = detect_bugs(programs.get("message_leak"))
        trace = run_program(programs.get("message_leak").parse(), 4, cfg=cfg)
        assert trace.leaked  # ground truth confirms

    def test_describe_mentions_leak(self):
        report, _, _ = detect_bugs(programs.get("message_leak"))
        assert "message leak" in report.describe()


class TestStuckReceive:
    def test_stuck_receive_detected(self):
        report, _, cfg = detect_bugs(programs.get("stuck_receive"))
        assert report.stuck_receives
        for node_id in report.stuck_receives:
            assert cfg.node(node_id).kind == NodeKind.RECV

    def test_describe_mentions_block(self):
        report, _, _ = detect_bugs(programs.get("stuck_receive"))
        assert "block forever" in report.describe()


class TestTypeMismatch:
    def test_mismatch_detected_on_matched_pair(self):
        report, _, _ = detect_bugs(programs.get("type_mismatch"))
        assert len(report.type_mismatches) == 1
        record = report.type_mismatches[0]
        assert record.mtype_send == "float"
        assert record.mtype_recv == "int"

    def test_same_types_clean(self):
        source = """
            if id == 0 then
                send 1 -> 1 : float
            elif id == 1 then
                receive y <- 0 : float
            else
                skip
            end
        """
        report, _, _ = detect_bugs(parse(source))
        assert not report.type_mismatches
        assert report.is_clean()


class TestPotentialFindings:
    def test_ring_modular_flagged_as_potential(self):
        report, _, _ = detect_bugs(programs.get("ring_modular"))
        assert not report.is_clean()
        assert report.potential_leaks or report.stuck_receives

    def test_potential_separate_from_definite(self):
        report, _, _ = detect_bugs(programs.get("ring_modular"))
        assert not report.leaked_sends  # nothing provably leaked


class TestCleanPrograms:
    @pytest.mark.parametrize(
        "name",
        ["pingpong", "exchange_with_root", "broadcast_fanout", "shift_right",
         "sequential_only"],
    )
    def test_correct_programs_clean(self, name):
        report, _, _ = detect_bugs(programs.get(name))
        assert report.is_clean(), report.describe()
