"""Parallel constant propagation tests (the Fig. 2 client)."""

from repro.analyses.constprop import (
    ConstantPropagationClient,
    propagate_constants,
)
from repro.lang import parse, programs
from repro.lang.cfg import NodeKind


class TestFig2:
    def test_both_prints_proven_five(self):
        report, result, cfg = propagate_constants(programs.get("pingpong"))
        assert not report.gave_up
        assert set(report.parallel.values()) == {5}

    def test_sequential_baseline_fails(self):
        report, _, _ = propagate_constants(programs.get("pingpong"))
        assert all(value is None for value in report.sequential.values())

    def test_wins_counts_parallel_advantage(self):
        report, _, _ = propagate_constants(programs.get("pingpong"))
        assert report.wins() == 2


class TestOtherPrograms:
    def test_pipeline_values_not_constant(self):
        """Pipeline increments per stage: the printed value depends on np,
        so neither analysis proves a constant — and neither invents one."""
        report, _, _ = propagate_constants(programs.get("pipeline_stages"))
        for value in report.parallel.values():
            assert value is None

    def test_local_constants_still_found(self):
        source = "x = 3 y = x + 4 print y"
        report, _, _ = propagate_constants(parse(source))
        assert list(report.parallel.values()) == [7]
        assert list(report.sequential.values()) == [7]

    def test_relayed_constant(self):
        """A constant relayed through two hops stays known."""
        source = """
            if id == 0 then
                x = 11
                send x -> 1
            elif id == 1 then
                receive y <- 0
                send y -> 2
            elif id == 2 then
                receive z <- 1
                print z
            else
                skip
            end
        """
        report, result, cfg = propagate_constants(parse(source))
        assert not report.gave_up
        assert list(report.parallel.values()) == [11]
        assert list(report.sequential.values()) == [None]

    def test_printed_constant_api(self):
        client = ConstantPropagationClient()
        report, result, cfg = propagate_constants(programs.get("pingpong"), client)
        prints = [n.node_id for n in cfg.nodes.values() if n.kind == NodeKind.PRINT]
        for node_id in prints:
            assert client.printed_constant(node_id) == 5

    def test_unknown_print_is_none(self):
        client = ConstantPropagationClient()
        propagate_constants(parse("x = input() print x"), client)
        assert all(
            client.printed_constant(node) is None
            for node in client.print_observations
        )
