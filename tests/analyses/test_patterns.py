"""Pattern classification tests (the Fig. 1 collective-rewrite application)."""

import pytest

from repro.analyses.cartesian import analyze_cartesian
from repro.analyses.patterns import classify_edges, classify_topology
from repro.analyses.simple_symbolic import analyze_program
from repro.lang import programs
from tests.conftest import corpus_inputs


class TestClassifyEdges:
    def test_broadcast(self):
        edges = {(0, k) for k in range(1, 6)}
        assert classify_edges(edges, 6) == "broadcast"

    def test_gather(self):
        edges = {(k, 0) for k in range(1, 6)}
        assert classify_edges(edges, 6) == "gather"

    def test_exchange_with_root(self):
        edges = {(0, k) for k in range(1, 6)} | {(k, 0) for k in range(1, 6)}
        assert classify_edges(edges, 6) == "exchange-with-root"

    def test_shift(self):
        edges = {(k, k + 1) for k in range(5)}
        assert classify_edges(edges, 6) == "shift"

    def test_ring(self):
        edges = {(k, (k + 1) % 6) for k in range(6)}
        assert classify_edges(edges, 6) == "ring"

    def test_nearest_neighbor(self):
        edges = {(k, k + 1) for k in range(5)} | {(k + 1, k) for k in range(5)}
        assert classify_edges(edges, 6) == "nearest-neighbor"

    def test_pairwise(self):
        assert classify_edges({(0, 1), (1, 0)}, 6) == "pairwise-exchange"

    def test_transpose(self):
        edges = {(i * 3 + j, j * 3 + i) for i in range(3) for j in range(3)}
        assert classify_edges(edges, 9) == "transpose"

    def test_none(self):
        assert classify_edges(set(), 4) == "none"

    def test_irregular(self):
        assert classify_edges({(0, 3), (1, 3), (3, 2)}, 6) == "irregular"


EXPECTED_PATTERNS = {
    "pingpong": "pairwise-exchange",
    "broadcast_fanout": "broadcast",
    "gather_to_root": "gather",
    "exchange_with_root": "exchange-with-root",
    "shift_right": "shift",
    "pipeline_stages": "shift",
    "master_worker": "exchange-with-root",
}


class TestClassifyTopology:
    @pytest.mark.parametrize("name", sorted(EXPECTED_PATTERNS))
    def test_corpus_patterns(self, name):
        spec = programs.get(name)
        program = spec.parse()
        result, cfg, _ = analyze_program(spec)
        report = classify_topology(program, result, cfg, probe_np=8)
        assert report.pattern == EXPECTED_PATTERNS[name]
        assert report.confidence == "exact"

    def test_mdcask_rewrite_suggestion(self):
        """The Fig. 1 motivating rewrite: exchange-with-root -> Bcast+Gather."""
        spec = programs.get("exchange_with_root")
        result, cfg, _ = analyze_program(spec)
        report = classify_topology(spec.parse(), result, cfg, probe_np=8)
        assert "MPI_Bcast" in report.suggestion
        assert "MPI_Gather" in report.suggestion

    def test_transpose_pattern(self):
        spec = programs.get("transpose_square")
        result, cfg, _ = analyze_cartesian(spec)
        report = classify_topology(
            spec.parse(), result, cfg, probe_np=9, inputs=corpus_inputs("transpose_square", 9)
        )
        assert report.pattern == "transpose"
        assert report.confidence == "exact"

    def test_gave_up_is_heuristic(self):
        spec = programs.get("ring_modular")
        result, cfg, _ = analyze_program(spec)
        report = classify_topology(spec.parse(), result, cfg, probe_np=8)
        assert report.confidence == "heuristic"
        assert report.pattern == "ring"
