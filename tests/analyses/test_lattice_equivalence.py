"""The optimized lattice is observably identical to the pre-overhaul one.

Every corpus program is analyzed twice: once with the full PR-2 machinery
(COW graphs, closure/equivalence memos, priority worklist, interned states)
and once with every optimization disabled (``naive_copy`` client, interning
off).  The observable analysis outcome — convergence, the match relation,
and the blocked/vacuous diagnostics — must be identical.

The same oracle gates the sharded executor: at every worker count the
multi-process engine must report the identical observable outcome, so any
speedup it buys can never come from changing answers.
"""

import pytest

from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.core.engine import PCFGEngine
from repro.core.shard import ShardedEngine
from repro.lang import build_cfg, programs

CORPUS = [
    "pingpong",
    "broadcast_fanout",
    "gather_to_root",
    "scatter_from_root",
    "exchange_with_root",
    "shift_right",
    "pipeline_stages",
    "ring_shift_nowrap",
    "master_worker",
    "mdcask_full",
    "neighbor_exchange_1d",
    "sequential_only",
]


def _observe(name: str, optimized: bool, jobs: int = 1):
    cfg = build_cfg(programs.get(name).parse())
    client = SimpleSymbolicClient(naive_copy=not optimized)
    if jobs > 1:
        engine = ShardedEngine(cfg, client, jobs=jobs, intern_states=optimized)
    else:
        engine = PCFGEngine(cfg, client, intern_states=optimized)
    result = engine.run()
    return {
        "gave_up": result.gave_up,
        "matches": frozenset(result.matches),
        "vacuous_blocks": tuple(result.vacuous_blocks),
        "final_states": len(result.final_states),
    }


@pytest.mark.parametrize("name", CORPUS)
def test_optimized_lattice_matches_naive(name):
    assert _observe(name, optimized=True) == _observe(name, optimized=False)


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_sharded_lattice_matches_serial(jobs):
    """Worker count never changes the observable outcome (whole corpus)."""
    for name in CORPUS:
        serial = _observe(name, optimized=True)
        sharded = _observe(name, optimized=True, jobs=jobs)
        assert sharded == serial, f"jobs={jobs} program={name}: {sharded} != {serial}"
