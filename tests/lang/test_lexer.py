"""Tokenizer tests."""

import pytest

from repro.lang.lexer import LexError, tokenize


class TestTokenize:
    def test_keywords_classified(self):
        tokens = tokenize("if then else end")
        assert all(t.kind == "KEYWORD" for t in tokens)

    def test_identifier_vs_keyword(self):
        tokens = tokenize("iffy if")
        assert tokens[0].kind == "NAME"
        assert tokens[1].kind == "KEYWORD"

    def test_numbers(self):
        (token,) = tokenize("42")
        assert token.kind == "NUMBER"
        assert token.text == "42"

    def test_arrows(self):
        kinds = [t.kind for t in tokenize("-> <-")]
        assert kinds == ["ARROW", "LARROW"]

    def test_comparison_operators(self):
        texts = [t.text for t in tokenize("== != <= >= < >")]
        assert texts == ["==", "!=", "<=", ">=", "<", ">"]

    def test_comments_stripped(self):
        tokens = tokenize("x = 1 # a comment\ny = 2")
        assert [t.text for t in tokens] == ["x", "=", "1", "y", "=", "2"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens] == [1, 2, 4]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("x @ y")

    def test_arrow_not_split_into_minus_gt(self):
        tokens = tokenize("send x -> 1")
        assert any(t.kind == "ARROW" for t in tokens)
        assert all(t.text != "-" for t in tokens)

    def test_empty_source(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n  ") == []
