"""CFG construction tests."""

import pytest

from repro.lang import build_cfg, parse, programs
from repro.lang.cfg import NodeKind


def cfg_of(source: str):
    return build_cfg(parse(source))


class TestStructure:
    def test_entry_and_exit_unique(self):
        cfg = cfg_of("x = 1")
        kinds = [n.kind for n in cfg.nodes.values()]
        assert kinds.count(NodeKind.ENTRY) == 1
        assert kinds.count(NodeKind.EXIT) == 1

    def test_empty_program(self):
        cfg = cfg_of("")
        assert cfg.succ_ids(cfg.entry) == [cfg.exit]

    def test_straightline_chain(self):
        cfg = cfg_of("x = 1 y = 2 print y")
        node = cfg.entry
        visited = []
        while node != cfg.exit:
            (node,) = cfg.succ_ids(node)
            visited.append(cfg.node(node).kind)
        assert visited == [
            NodeKind.ASSIGN,
            NodeKind.ASSIGN,
            NodeKind.PRINT,
            NodeKind.EXIT,
        ]

    def test_branch_has_labeled_edges(self):
        cfg = cfg_of("if x == 0 then skip else print x end")
        branch = next(n for n in cfg.nodes.values() if n.kind == NodeKind.BRANCH)
        labels = {label for _dst, label in cfg.successors(branch.node_id)}
        assert labels == {True, False}

    def test_if_without_else_false_edge_exists(self):
        cfg = cfg_of("if x == 0 then skip end print x")
        branch = next(n for n in cfg.nodes.values() if n.kind == NodeKind.BRANCH)
        false_edges = [lbl for _d, lbl in cfg.successors(branch.node_id) if lbl is False]
        assert len(false_edges) == 1

    def test_while_back_edge(self):
        cfg = cfg_of("while x > 0 do x = x - 1 end")
        branch = next(n for n in cfg.nodes.values() if n.kind == NodeKind.BRANCH)
        body = next(d for d, lbl in cfg.successors(branch.node_id) if lbl is True)
        assert branch.node_id in cfg.succ_ids(body)

    def test_for_desugars_to_init_and_while(self):
        cfg = cfg_of("for i = 1 to 3 do skip end")
        assigns = [n for n in cfg.nodes.values() if n.kind == NodeKind.ASSIGN]
        # init (i = 1) and increment (i = i + 1)
        assert len(assigns) == 2
        branches = [n for n in cfg.nodes.values() if n.kind == NodeKind.BRANCH]
        assert len(branches) == 1
        assert "<=" in str(branches[0].cond)

    def test_comm_nodes(self):
        cfg = cfg_of("send x -> 1 receive y <- 0")
        assert len(cfg.comm_nodes()) == 2
        assert all(node.is_comm() for node in cfg.comm_nodes())


class TestOrderingAndLabels:
    def test_reverse_postorder_starts_at_entry(self):
        cfg = cfg_of("if x == 0 then skip else skip end")
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry

    def test_rpo_covers_reachable_nodes(self):
        cfg = cfg_of("while x > 0 do x = x - 1 end print x")
        assert set(cfg.reverse_postorder()) == set(cfg.nodes)

    def test_letter_labels_assigned(self):
        cfg = cfg_of("x = 1 y = 2")
        labels = {n.label for n in cfg.nodes.values()}
        assert "A" in labels
        assert all(n.label for n in cfg.nodes.values())

    def test_predecessors(self):
        cfg = cfg_of("x = 1 y = 2")
        second = [n for n in cfg.nodes.values() if n.kind == NodeKind.ASSIGN][1]
        preds = cfg.predecessors(second.node_id)
        assert len(preds) == 1


class TestDotOutput:
    def test_dot_contains_all_nodes(self):
        cfg = cfg_of("if x == 0 then send x -> 1 end")
        dot = cfg.to_dot()
        assert dot.startswith("digraph")
        for node in cfg.nodes.values():
            assert f"n{node.node_id}" in dot


class TestCorpusCFGs:
    @pytest.mark.parametrize("name", programs.names())
    def test_every_corpus_program_builds(self, name):
        cfg = build_cfg(programs.get(name).parse())
        assert cfg.entry in cfg.nodes
        assert cfg.exit in cfg.nodes
        # every non-exit node has at least one successor
        for node_id, node in cfg.nodes.items():
            if node.kind != NodeKind.EXIT:
                assert cfg.succ_ids(node_id), f"dangling node {node}"

    @pytest.mark.parametrize("name", programs.names())
    def test_branches_have_both_edges(self, name):
        cfg = build_cfg(programs.get(name).parse())
        for node in cfg.nodes.values():
            if node.kind == NodeKind.BRANCH:
                labels = sorted(
                    lbl for _d, lbl in cfg.successors(node.node_id) if lbl is not None
                )
                assert labels == [False, True]
