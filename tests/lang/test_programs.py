"""Corpus registry integrity tests."""

import pytest

from repro.lang import programs


class TestRegistry:
    def test_names_sorted_and_unique(self):
        names = programs.names()
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_lookup(self):
        spec = programs.get("pingpong")
        assert spec.name == "pingpong"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            programs.get("nonexistent")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            programs.register(programs.get("pingpong"))

    def test_all_specs_parse(self):
        for spec in programs.all_specs():
            program = spec.parse()
            assert program.body, spec.name

    def test_by_client_partitions(self):
        simple = {s.name for s in programs.by_client("simple")}
        cartesian = {s.name for s in programs.by_client("cartesian")}
        none = {s.name for s in programs.by_client("none")}
        assert simple and cartesian and none
        assert not (simple & cartesian)
        assert {"transpose_square", "transpose_rect"} <= cartesian

    def test_metadata_present(self):
        for spec in programs.all_specs():
            assert spec.description
            assert spec.paper_ref
            assert spec.pattern

    def test_paper_examples_present(self):
        names = set(programs.names())
        assert {
            "pingpong",  # Fig. 2
            "exchange_with_root",  # Fig. 1 / Fig. 5
            "transpose_square",  # Fig. 6
            "transpose_rect",  # Fig. 6
            "shift_right",  # Fig. 7
            "broadcast_fanout",  # Sec. IX
        } <= names
