"""Parser tests: statements, expressions, precedence and errors."""

import pytest

from repro.lang.ast import (
    Assert,
    Assign,
    BinOp,
    Compare,
    For,
    If,
    InputExpr,
    Num,
    Print,
    Recv,
    Send,
    Skip,
    UnaryOp,
    Var,
    While,
)
from repro.lang.parser import ParseError, parse, parse_expr


class TestStatements:
    def test_assignment(self):
        program = parse("x = 1 + 2")
        (stmt,) = program.body
        assert isinstance(stmt, Assign)
        assert stmt.target == "x"

    def test_skip(self):
        assert isinstance(parse("skip").body[0], Skip)

    def test_send_with_default_type(self):
        (stmt,) = parse("send x -> id + 1").body
        assert isinstance(stmt, Send)
        assert stmt.mtype == "int"

    def test_send_with_type(self):
        (stmt,) = parse("send x -> 0 : float").body
        assert stmt.mtype == "float"

    def test_receive(self):
        (stmt,) = parse("receive y <- id - 1").body
        assert isinstance(stmt, Recv)
        assert stmt.target == "y"

    def test_receive_with_type(self):
        (stmt,) = parse("receive y <- 0 : double").body
        assert stmt.mtype == "double"

    def test_print(self):
        assert isinstance(parse("print x").body[0], Print)

    def test_assert(self):
        (stmt,) = parse("assert np == nrows * ncols").body
        assert isinstance(stmt, Assert)

    def test_if_without_else(self):
        (stmt,) = parse("if x == 0 then skip end").body
        assert isinstance(stmt, If)
        assert stmt.else_body == ()

    def test_if_with_else(self):
        (stmt,) = parse("if x == 0 then skip else print x end").body
        assert len(stmt.else_body) == 1

    def test_elif_desugars_to_nested_if(self):
        (stmt,) = parse(
            "if id == 0 then skip elif id == 1 then print id else skip end"
        ).body
        assert isinstance(stmt, If)
        (nested,) = stmt.else_body
        assert isinstance(nested, If)
        assert len(nested.else_body) == 1

    def test_elif_chain(self):
        source = """
            if id == 0 then skip
            elif id == 1 then skip
            elif id == 2 then skip
            else print id end
        """
        (stmt,) = parse(source).body
        inner = stmt.else_body[0].else_body[0]
        assert isinstance(inner, If)

    def test_while(self):
        (stmt,) = parse("while x > 0 do x = x - 1 end").body
        assert isinstance(stmt, While)
        assert len(stmt.body) == 1

    def test_for(self):
        (stmt,) = parse("for i = 1 to np - 1 do skip end").body
        assert isinstance(stmt, For)
        assert stmt.var == "i"

    def test_input(self):
        (stmt,) = parse("n = input()").body
        assert isinstance(stmt.value, InputExpr)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, BinOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinOp)

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_integer_division_and_mod(self):
        expr = parse_expr("id / nrows % ncols")
        assert expr.op == "%"
        assert expr.left.op == "/"

    def test_comparison(self):
        expr = parse_expr("id <= np - 1")
        assert isinstance(expr, Compare)
        assert expr.op == "<="

    def test_boolean_precedence(self):
        expr = parse_expr("a == 1 or b == 2 and c == 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not(self):
        expr = parse_expr("not x == 1")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "not"

    def test_unary_minus_folds_literal(self):
        assert parse_expr("-5") == Num(-5)

    def test_unary_minus_on_var(self):
        expr = parse_expr("-x")
        assert isinstance(expr, UnaryOp)

    def test_transpose_expression(self):
        expr = parse_expr("(id % nrows) * nrows + id / nrows")
        assert expr.op == "+"

    def test_free_vars(self):
        expr = parse_expr("id + offset * np")
        assert expr.free_vars() == {"id", "offset", "np"}


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "if x then skip",  # missing end
            "send x",  # missing arrow
            "receive 5 <- 0",  # target must be a name
            "x =",  # missing rhs
            "while do end",  # missing condition
            "for i = 1 do end",  # missing 'to'
            "end",  # stray keyword
            "x = (1 + 2",  # unbalanced paren
            "input",  # input needs parens as expression... (statement position)
        ],
    )
    def test_malformed(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_trailing_tokens_in_expr(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 extra")


class TestNegatedCompare:
    @pytest.mark.parametrize(
        "op,negated",
        [("==", "!="), ("!=", "=="), ("<", ">="), ("<=", ">"), (">", "<="), (">=", "<")],
    )
    def test_negation_table(self, op, negated):
        compare = Compare(op, Var("a"), Var("b"))
        assert compare.negated().op == negated


class TestProgramQueries:
    def test_sends_and_recvs(self):
        program = parse(
            "if id == 0 then send x -> 1 else receive y <- 0 end"
        )
        assert len(program.sends()) == 1
        assert len(program.recvs()) == 1

    def test_variables(self):
        program = parse("x = 5 send x -> i receive y <- 0")
        assert {"x", "i", "y"} <= program.variables()
