"""Tests for invariant-system normalization and sign reasoning."""

import pytest
from hypothesis import given, strategies as st

from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem


@pytest.fixture
def square_system():
    inv = InvariantSystem()
    inv.add_equality("ncols", Poly.var("nrows"))
    inv.add_equality("np", Poly.var("nrows") * Poly.var("ncols"))
    inv.assume_positive("nrows", "ncols", "np")
    return inv


@pytest.fixture
def rect_system():
    inv = InvariantSystem()
    inv.add_equality("ncols", 2 * Poly.var("nrows"))
    inv.add_equality("np", Poly.var("nrows") * Poly.var("ncols"))
    inv.assume_positive("nrows", "ncols", "np")
    return inv


class TestNormalization:
    def test_chained_substitution(self, square_system):
        normal = square_system.normalize(Poly.var("np"))
        assert normal == Poly.var("nrows") * Poly.var("nrows")

    def test_rect_substitution(self, rect_system):
        normal = rect_system.normalize(Poly.var("np"))
        assert normal == 2 * Poly.var("nrows") * Poly.var("nrows")

    def test_equal_modulo_invariants(self, square_system):
        assert square_system.equal(
            Poly.var("np"), Poly.var("nrows") * Poly.var("ncols")
        )

    def test_unrelated_not_equal(self, square_system):
        assert not square_system.equal(Poly.var("np"), Poly.var("nrows"))

    def test_circular_invariant_rejected(self):
        inv = InvariantSystem()
        with pytest.raises(ValueError):
            inv.add_equality("x", Poly.var("x") + 1)

    def test_later_equality_renormalizes_earlier(self):
        inv = InvariantSystem()
        inv.add_equality("np", Poly.var("nrows") * Poly.var("ncols"))
        inv.add_equality("ncols", Poly.var("nrows"))
        assert inv.normalize(Poly.var("np")) == Poly.var("nrows") * Poly.var("nrows")


class TestDivision:
    def test_divides_np_by_nrows(self, square_system):
        assert square_system.divides(Poly.var("nrows"), Poly.var("np"))

    def test_exact_div_value(self, square_system):
        quotient = square_system.exact_div(Poly.var("np"), Poly.var("nrows"))
        assert quotient == Poly.var("nrows")

    def test_rect_div_by_two(self, rect_system):
        quotient = rect_system.exact_div(Poly.var("np"), Poly.const(2))
        assert quotient == Poly.var("nrows") * Poly.var("nrows")

    def test_non_divisor(self, square_system):
        assert square_system.exact_div(Poly.var("nrows") + 1, Poly.var("nrows")) is None

    def test_div_by_zero_is_none(self, square_system):
        assert square_system.exact_div(Poly.var("np"), Poly.const(0)) is None


class TestSigns:
    def test_positive_variable(self, square_system):
        assert square_system.is_positive(Poly.var("nrows"))

    def test_positive_product(self, square_system):
        assert square_system.is_positive(Poly.var("np"))

    def test_monomial_dominance(self, square_system):
        # 2*nrows - 2 >= 0 because nrows >= 1
        assert square_system.is_nonnegative(2 * Poly.var("nrows") - 2)

    def test_dominance_needs_enough_credit(self, square_system):
        # nrows - 2 can be negative at nrows = 1
        assert not square_system.is_nonnegative(Poly.var("nrows") - 2)

    def test_quadratic_dominates_linear(self, square_system):
        # nrows^2 - nrows >= 0 for nrows >= 1
        nrows = Poly.var("nrows")
        assert square_system.is_nonnegative(nrows * nrows - nrows)

    def test_unknown_variable_blocks_proof(self, square_system):
        assert not square_system.is_nonnegative(Poly.var("mystery"))

    def test_negative_constant(self, square_system):
        assert not square_system.is_nonnegative(Poly.const(-1))

    @given(st.integers(1, 30), st.integers(0, 30))
    def test_dominance_sound_on_samples(self, nrows, slack):
        inv = InvariantSystem()
        inv.assume_positive("nrows")
        poly = 3 * Poly.var("nrows") - slack
        if inv.is_nonnegative(poly):
            assert poly.evaluate({"nrows": nrows}) >= 0


class TestSampleEnvironment:
    def test_derives_dependents(self, square_system):
        env = square_system.sample_environment({"nrows": 4})
        assert env["ncols"] == 4
        assert env["np"] == 16

    def test_rect_environment(self, rect_system):
        env = rect_system.sample_environment({"nrows": 3})
        assert env["ncols"] == 6
        assert env["np"] == 18
