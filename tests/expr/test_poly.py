"""Unit and property tests for multivariate polynomials."""

import pytest
from hypothesis import given, strategies as st

from repro.expr.linear import LinearExpr
from repro.expr.poly import Monomial, Poly

VARS = ["nrows", "ncols", "np"]


def polys():
    monos = st.builds(
        Monomial,
        st.dictionaries(st.sampled_from(VARS), st.integers(1, 2), max_size=2),
    )
    return st.builds(
        Poly, st.dictionaries(monos, st.integers(-9, 9), max_size=4)
    )


def envs():
    return st.fixed_dictionaries({name: st.integers(1, 8) for name in VARS})


class TestMonomial:
    def test_unit(self):
        assert Monomial.unit().is_unit()
        assert Monomial.unit().degree() == 0

    def test_multiplication(self):
        m = Monomial.var("nrows") * Monomial.var("nrows") * Monomial.var("ncols")
        assert m.powers == {"nrows": 2, "ncols": 1}
        assert m.degree() == 3

    def test_divides(self):
        big = Monomial({"nrows": 2, "ncols": 1})
        small = Monomial.var("nrows")
        assert small.divides(big)
        assert not big.divides(small)

    def test_floordiv(self):
        big = Monomial({"nrows": 2})
        assert big // Monomial.var("nrows") == Monomial.var("nrows")

    def test_floordiv_rejects_nondivisor(self):
        with pytest.raises(ValueError):
            Monomial.var("nrows") // Monomial.var("ncols")

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Monomial({"x": -1})


class TestPolyBasics:
    def test_const_roundtrip(self):
        assert Poly.const(4).as_constant() == 4

    def test_zero(self):
        assert (Poly.var("x") - Poly.var("x")).is_zero()

    def test_coerce_linear(self):
        linear = LinearExpr(2, {"nrows": 3})
        poly = Poly.coerce(linear)
        assert poly.evaluate({"nrows": 5}) == 17

    def test_as_linear_roundtrip(self):
        linear = LinearExpr(2, {"nrows": 3})
        assert Poly.coerce(linear).as_linear() == linear

    def test_as_linear_refuses_quadratic(self):
        quadratic = Poly.var("nrows") * Poly.var("nrows")
        assert quadratic.as_linear() is None

    def test_as_monomial(self):
        coeff, mono = (2 * Poly.var("nrows")).as_monomial()
        assert coeff == 2
        assert mono == Monomial.var("nrows")

    def test_variables(self):
        poly = Poly.var("nrows") * Poly.var("ncols") + 1
        assert poly.variables() == ("ncols", "nrows")

    def test_int_equality(self):
        assert Poly.const(3) == 3


class TestExactDivision:
    def test_divide_by_monomial(self):
        numerator = Poly.var("nrows") * Poly.var("nrows") * 4
        assert numerator.exact_div(2 * Poly.var("nrows")) == 2 * Poly.var("nrows")

    def test_inexact_coefficient(self):
        assert (3 * Poly.var("x")).exact_div(Poly.const(2)) is None

    def test_inexact_variable(self):
        assert Poly.var("nrows").exact_div(Poly.var("ncols")) is None

    def test_multi_term_division(self):
        # (nrows^2 + nrows) / nrows -- divisor single term, numerator multi
        numerator = Poly.var("nrows") * Poly.var("nrows") + Poly.var("nrows")
        assert numerator.exact_div(Poly.var("nrows")) == Poly.var("nrows") + 1

    def test_general_division(self):
        # (x^2 - 1) / (x - 1) = x + 1 via leading-term steps
        x = Poly.var("x")
        assert (x * x - 1).exact_div(x - 1) == x + 1

    def test_general_division_inexact(self):
        x = Poly.var("x")
        assert (x * x + 1).exact_div(x - 1) is None

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Poly.var("x").exact_div(Poly.const(0))


class TestSubstitution:
    def test_substitute_product(self):
        np_ = Poly.var("np")
        replaced = np_.substitute({"np": Poly.var("nrows") * Poly.var("ncols")})
        assert replaced == Poly.var("nrows") * Poly.var("ncols")

    def test_substitute_power(self):
        poly = Poly.var("x") * Poly.var("x")
        replaced = poly.substitute({"x": Poly.var("y") + 1})
        y = Poly.var("y")
        assert replaced == y * y + 2 * y + 1


class TestProperties:
    @given(polys(), polys(), envs())
    def test_add_homomorphic(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(polys(), polys(), envs())
    def test_mul_homomorphic(self, a, b, env):
        assert (a * b).evaluate(env) == a.evaluate(env) * b.evaluate(env)

    @given(polys(), polys())
    def test_mul_commutative(self, a, b):
        assert a * b == b * a

    @given(polys(), polys(), polys())
    def test_distributive(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(polys(), polys())
    def test_exact_div_inverts_mul(self, a, b):
        single = b.as_monomial()
        if single is None or single[0] == 0:
            return
        product = a * b
        assert product.exact_div(b) == a
