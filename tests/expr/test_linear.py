"""Unit and property tests for affine expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.expr.linear import LinearExpr, sum_exprs

VARS = ["x", "y", "z", "np", "i"]


def small_exprs():
    return st.builds(
        LinearExpr,
        st.integers(-50, 50),
        st.dictionaries(st.sampled_from(VARS), st.integers(-5, 5), max_size=3),
    )


def envs():
    return st.fixed_dictionaries({name: st.integers(-20, 20) for name in VARS})


class TestConstruction:
    def test_const(self):
        assert LinearExpr.const(7).as_constant() == 7

    def test_var(self):
        expr = LinearExpr.var("x")
        assert expr.coeff("x") == 1
        assert expr.constant == 0

    def test_zero_coefficients_dropped(self):
        expr = LinearExpr(3, {"x": 0, "y": 2})
        assert expr.variables() == ("y",)

    def test_coerce_int(self):
        assert LinearExpr.coerce(5) == LinearExpr.const(5)

    def test_coerce_str(self):
        assert LinearExpr.coerce("np") == LinearExpr.var("np")

    def test_coerce_rejects_float(self):
        with pytest.raises(TypeError):
            LinearExpr.coerce(1.5)


class TestArithmetic:
    def test_add_vars(self):
        expr = LinearExpr.var("x") + LinearExpr.var("x") + 1
        assert expr.coeff("x") == 2
        assert expr.constant == 1

    def test_sub_cancels(self):
        expr = (LinearExpr.var("i") + 3) - LinearExpr.var("i")
        assert expr.as_constant() == 3

    def test_scalar_multiplication(self):
        expr = 3 * (LinearExpr.var("x") + 1)
        assert expr.coeff("x") == 3
        assert expr.constant == 3

    def test_negation(self):
        expr = -(LinearExpr.var("x") - 2)
        assert expr.coeff("x") == -1
        assert expr.constant == 2

    def test_rsub(self):
        expr = 10 - LinearExpr.var("x")
        assert expr.constant == 10
        assert expr.coeff("x") == -1

    def test_sum_exprs(self):
        total = sum_exprs([1, "x", LinearExpr.var("x")])
        assert total == LinearExpr(1, {"x": 2})

    def test_sum_empty(self):
        assert sum_exprs([]).as_constant() == 0


class TestShapeQueries:
    def test_var_plus_const(self):
        assert (LinearExpr.var("i") + 4).split_var_plus_const() == ("i", 4)

    def test_not_var_plus_const_with_coeff(self):
        assert (2 * LinearExpr.var("i")).split_var_plus_const() is None

    def test_not_var_plus_const_two_vars(self):
        expr = LinearExpr.var("i") + LinearExpr.var("j")
        assert expr.split_var_plus_const() is None

    def test_mentions(self):
        expr = LinearExpr.var("np") - 1
        assert expr.mentions("np")
        assert not expr.mentions("x")


class TestSubstitution:
    def test_substitute_var(self):
        expr = LinearExpr.var("i") + 1
        replaced = expr.substitute({"i": LinearExpr.var("i") - 1})
        assert replaced == LinearExpr.var("i")

    def test_substitute_const(self):
        expr = 2 * LinearExpr.var("x") + LinearExpr.var("y")
        replaced = expr.substitute({"x": 3})
        assert replaced == LinearExpr.var("y") + 6

    def test_substitute_untouched(self):
        expr = LinearExpr.var("x")
        assert expr.substitute({"y": 0}) == expr


class TestProtocol:
    def test_equality_and_hash(self):
        a = LinearExpr.var("x") + 1
        b = LinearExpr(1, {"x": 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_in_sets(self):
        exprs = {LinearExpr.var("x"), LinearExpr.var("x"), LinearExpr.const(0)}
        assert len(exprs) == 2

    def test_str_renders_signs(self):
        expr = LinearExpr.var("np") - 1
        assert str(expr) == "np - 1"


class TestProperties:
    @given(small_exprs(), small_exprs(), envs())
    def test_add_homomorphic(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(small_exprs(), st.integers(-10, 10), envs())
    def test_scalar_mul_homomorphic(self, a, k, env):
        assert (k * a).evaluate(env) == k * a.evaluate(env)

    @given(small_exprs(), small_exprs(), envs())
    def test_sub_homomorphic(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(small_exprs())
    def test_double_negation(self, a):
        assert -(-a) == a

    @given(small_exprs(), small_exprs())
    def test_commutative_add(self, a, b):
        assert a + b == b + a

    @given(small_exprs(), envs())
    def test_substitution_respects_semantics(self, a, env):
        bindings = {"x": LinearExpr.var("y") + 2}
        substituted = a.substitute(bindings)
        env2 = dict(env)
        env2["x"] = env["y"] + 2
        assert substituted.evaluate(env) == a.evaluate(env2)
