"""Symbolic process-set tests, validated against concrete enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cgraph.constraint_graph import ConstraintGraph
from repro.expr.linear import LinearExpr
from repro.procset.interval import Bound, Order, ProcSet, SymRange


def L(value):
    return LinearExpr.coerce(value)


@pytest.fixture
def oracle():
    """Constraint graph knowing i == 2 and np >= 6."""
    g = ConstraintGraph()
    g.set_const("i", 2)
    g.add_lower("np", 6)
    return g


class TestBound:
    def test_canonical_prefers_constant(self):
        bound = Bound({L("i"), L(2)})
        assert bound.canonical() == L(2)

    def test_shift(self):
        bound = Bound({L("i")}).shift(3)
        assert bound.exprs == frozenset({L("i") + 3})

    def test_translate_symbolic(self):
        bound = Bound({L(0)}).translate(L("np"))
        assert bound.exprs == frozenset({L("np")})

    def test_widen_keeps_common(self):
        a = Bound({L(1), L("i")})
        b = Bound({L(2), L("i")})
        assert a.widen_with(b).exprs == frozenset({L("i")})

    def test_widen_empty_is_none(self):
        assert Bound({L(1)}).widen_with(Bound({L(2)})) is None

    def test_union(self):
        merged = Bound({L(1)}).union_with(Bound({L("i")}))
        assert merged.exprs == frozenset({L(1), L("i")})

    def test_empty_bound_rejected(self):
        with pytest.raises(ValueError):
            Bound(set())

    def test_leq_via_oracle(self, oracle):
        assert Bound({L("i")}).leq(Bound({L("np") - 1}), oracle) is True

    def test_eq_via_shared_expr(self):
        a = Bound({L("i"), L(5)})
        b = Bound({L("i")})
        assert a.eq(b, Order()) is True

    def test_substitute(self):
        bound = Bound({L("i") + 1}).substitute({"i": L("i") - 1})
        assert bound.exprs == frozenset({L("i")})


class TestSymRange:
    def test_emptiness_decided(self, oracle):
        assert SymRange.make(3, 2).is_empty(oracle) is True
        assert SymRange.make(2, 3).is_empty(oracle) is False

    def test_emptiness_unknown(self, oracle):
        rng = SymRange.make("i", "j")
        assert rng.is_empty(oracle) is None

    def test_singleton(self, oracle):
        assert SymRange.point(L("i")).is_singleton(oracle) is True
        assert SymRange.make(1, 2).is_singleton(oracle) is False

    def test_contains(self, oracle):
        rng = SymRange.make(1, L("np") - 1)
        assert rng.contains_expr(L("i"), oracle) is True
        assert rng.contains_expr(L(0), oracle) is False

    def test_intersect(self, oracle):
        a = SymRange.make(1, L("np") - 1)
        b = SymRange.point(L("i"))
        inter = a.intersect(b, oracle)
        assert inter.lb.eq(b.lb, oracle) is True

    def test_intersect_unknown_is_none(self, oracle):
        a = SymRange.make("j", 10)
        b = SymRange.make(1, 10)
        assert a.intersect(b, oracle) is None

    def test_difference_middle(self, oracle):
        a = SymRange.make(1, L("np") - 1)
        pieces = a.difference(SymRange.point(L("i")), oracle)
        assert len(pieces) == 2
        low, high = pieces
        assert low.ub.eq(Bound({L("i") - 1}), oracle) is True
        assert high.lb.eq(Bound({L("i") + 1}), oracle) is True

    def test_difference_disjoint(self, oracle):
        a = SymRange.make(5, 9)
        pieces = a.difference(SymRange.make(1, 2), oracle)
        assert pieces == [a]

    def test_difference_whole(self, oracle):
        a = SymRange.make(1, 4)
        pieces = a.difference(SymRange.make(1, 4), oracle)
        assert pieces == []

    def test_enumerate(self):
        rng = SymRange.make(2, L("np") - 1)
        assert rng.enumerate({"np": 5}) == [2, 3, 4]


class TestProcSet:
    def test_empty_set(self, oracle):
        assert ProcSet.empty().is_empty(oracle) is True

    def test_prune_empty(self, oracle):
        pset = ProcSet([SymRange.make(1, 0), SymRange.make(2, 5)])
        pruned = pset.prune_empty(oracle)
        assert len(pruned.ranges) == 1

    def test_union_coalesces_adjacent(self, oracle):
        a = ProcSet([SymRange.make(0, 0)])
        b = ProcSet([SymRange.make(1, L("np") - 1)])
        merged = a.union_with(b, oracle)
        rng = merged.single_range()
        assert rng is not None
        assert rng.enumerate({"np": 6, "i": 2}) == [0, 1, 2, 3, 4, 5]

    def test_union_keeps_disjoint(self, oracle):
        a = ProcSet([SymRange.make(0, 0)])
        b = ProcSet([SymRange.make(4, 5)])
        merged = a.union_with(b, oracle)
        assert len(merged.ranges) == 2

    def test_union_coalesces_symbolic(self, oracle):
        # [1..i-1] followed by [i..np-1] must coalesce
        a = ProcSet([SymRange.make(1, L("i") - 1)])
        b = ProcSet([SymRange.make(L("i"), L("np") - 1)])
        merged = a.union_with(b, oracle)
        assert merged.single_range() is not None

    def test_widen_positional(self):
        a = ProcSet([SymRange(Bound({L(1), L("i")}), Bound({L(5)}))])
        b = ProcSet([SymRange(Bound({L(2), L("i")}), Bound({L(5)}))])
        widened = a.widen_with(b)
        assert widened.single_range().lb.exprs == frozenset({L("i")})

    def test_widen_shape_mismatch(self):
        a = ProcSet([SymRange.make(1, 2)])
        b = ProcSet([SymRange.make(1, 2), SymRange.make(4, 5)])
        assert a.widen_with(b) is None

    def test_shift_and_translate(self):
        pset = ProcSet([SymRange.make(1, 3)])
        assert pset.shift(2).enumerate({}) == [3, 4, 5]
        assert pset.translate(L("np")).enumerate({"np": 10}) == [11, 12, 13]

    def test_enumerate_dedupes(self):
        pset = ProcSet([SymRange.make(1, 3), SymRange.make(3, 4)])
        assert pset.enumerate({}) == [1, 2, 3, 4]


class TestSetAlgebraConcretely:
    """Symbolic operations agree with concrete set algebra (hypothesis)."""

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(0, 8), st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)
    )
    def test_intersect_concrete(self, a_lo, a_hi, b_lo, b_hi):
        order = Order()
        a = SymRange.make(a_lo, a_hi)
        b = SymRange.make(b_lo, b_hi)
        inter = a.intersect(b, order)
        expected = set(range(a_lo, a_hi + 1)) & set(range(b_lo, b_hi + 1))
        assert inter is not None
        got = set(inter.enumerate({})) if inter.is_empty(order) is not True else set()
        assert got == expected

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(0, 8), st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)
    )
    def test_difference_concrete(self, a_lo, a_hi, b_lo, b_hi):
        order = Order()
        a = SymRange.make(a_lo, a_hi)
        b = SymRange.make(b_lo, b_hi)
        pieces = a.difference(b, order)
        assert pieces is not None
        expected = set(range(a_lo, a_hi + 1)) - set(range(b_lo, b_hi + 1))
        got = set()
        for piece in pieces:
            if piece.is_empty(order) is not True:
                got |= set(piece.enumerate({}))
        assert got == expected
