"""Concrete enumerator baseline tests."""

from repro.analyses.simple_symbolic import analyze_program
from repro.baselines.concrete import concrete_matches, sweep
from repro.lang import programs


class TestConcrete:
    def test_exact_edges(self):
        program = programs.get("broadcast_fanout").parse()
        result = concrete_matches(program, 5)
        assert result.proc_edges == frozenset((0, k) for k in range(1, 5))

    def test_cost_grows_with_np(self):
        program = programs.get("exchange_with_root").parse()
        small = concrete_matches(program, 4)
        large = concrete_matches(program, 64)
        assert large.total_steps > 4 * small.total_steps

    def test_sweep(self):
        program = programs.get("gather_to_root").parse()
        results = sweep(program, [2, 4, 8])
        assert [r.num_procs for r in results] == [2, 4, 8]
        assert all(len(r.proc_edges) == r.num_procs - 1 for r in results)

    def test_sweep_with_inputs(self):
        program = programs.get("transpose_square").parse()
        results = sweep(
            program,
            [4, 9],
            inputs_for=lambda n: [int(n ** 0.5), int(n ** 0.5)],
        )
        assert all(len(r.proc_edges) == r.num_procs for r in results)

    def test_agreement_with_static_analysis(self):
        """Static (np-independent) matches equal concrete matches at any np."""
        spec = programs.get("exchange_with_root")
        result, cfg, _ = analyze_program(spec)
        for num_procs in (4, 6, 10, 17):
            concrete = concrete_matches(spec.parse(), num_procs, cfg=cfg)
            assert set(concrete.node_edges) == set(result.matches)
