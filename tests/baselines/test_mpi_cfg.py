"""MPI-CFG baseline tests: soundness and (im)precision vs the pCFG analysis."""

import pytest

from repro.analyses.simple_symbolic import analyze_program
from repro.baselines.concrete import concrete_matches
from repro.baselines.mpi_cfg import (
    DEFAULT_PROBE_NP,
    MAX_PROBE_NP,
    build_mpi_cfg,
    probe_np_for,
)
from repro.lang import parse, programs


class TestSoundness:
    @pytest.mark.parametrize(
        "name",
        ["pingpong", "exchange_with_root", "broadcast_fanout", "shift_right",
         "mdcask_full"],
    )
    def test_covers_ground_truth(self, name):
        program = programs.get(name).parse()
        mpi = build_mpi_cfg(program)
        truth = concrete_matches(program, 6, cfg=mpi.cfg)
        assert set(truth.node_edges) <= mpi.comm_edges


class TestPruning:
    def test_type_mismatch_pruned(self):
        program = programs.get("type_mismatch").parse()
        mpi = build_mpi_cfg(program)
        assert any(reason == "type-mismatch" for *_edge, reason in mpi.pruned)
        assert mpi.comm_edges == set()

    def test_constant_mismatch_pruned(self):
        source = """
            if id == 0 then
                send 1 -> 1
            elif id == 1 then
                receive y <- 2
            elif id == 2 then
                send 2 -> 1
                skip
            else
                skip
            end
        """
        # the receive expects rank 2; the send from rank 0 cannot match it
        program = parse(source)
        mpi = build_mpi_cfg(program)
        reasons = {reason for *_e, reason in mpi.pruned}
        assert "constant-mismatch" in reasons

    def test_symbolic_endpoints_kept(self):
        program = programs.get("exchange_with_root").parse()
        mpi = build_mpi_cfg(program)
        # the loop-carried destination `i` is not constant: edges survive
        assert mpi.edge_count() >= 2


class TestPrecisionGap:
    @pytest.mark.parametrize("name", ["exchange_with_root", "mdcask_full"])
    def test_pcfg_strictly_more_precise(self, name):
        """The headline comparison: MPI-CFG keeps spurious edges the pCFG
        analysis eliminates."""
        spec = programs.get(name)
        program = spec.parse()
        result, cfg, _ = analyze_program(spec)
        assert not result.gave_up
        mpi = build_mpi_cfg(program, cfg=cfg)
        truth = concrete_matches(program, 8, cfg=cfg)
        mpi_spurious = mpi.spurious_edges(truth.node_edges)
        pcfg_spurious = set(result.matches) - set(truth.node_edges)
        assert len(pcfg_spurious) == 0
        assert len(mpi_spurious) > 0
        assert set(result.matches) < mpi.comm_edges

    @pytest.mark.parametrize(
        "name", ["pingpong", "shift_right", "neighbor_exchange_1d"]
    )
    def test_pcfg_never_less_precise(self, name):
        """Even where MPI-CFG has no spurious edges, pCFG matches a subset."""
        spec = programs.get(name)
        program = spec.parse()
        result, cfg, _ = analyze_program(spec)
        assert not result.gave_up
        mpi = build_mpi_cfg(program, cfg=cfg)
        assert set(result.matches) <= mpi.comm_edges


class TestAdaptiveProbe:
    """Regression mplg1-b26c6652: ranks beyond the fixed probe np.

    Probing constant propagation at np=6 makes a guard like ``id == 6``
    unreachable for every rank, so all edges of a rank-3<->rank-6 exchange
    were wrongly pruned as 'constant-mismatch' and the "sound by
    construction" baseline claimed an empty topology.  The probe np now
    adapts to the largest rank-relevant literal.
    """

    SOURCE = """
        if id == 3 then
            x = id
            send x -> 6
            receive z <- 6
        elif id == 6 then
            receive y <- 3
            send y -> 3
        else
            skip
        end
    """

    def test_probe_np_covers_mentioned_ranks(self):
        program = parse(self.SOURCE)
        assert probe_np_for(program) >= 8

    def test_high_rank_edges_survive(self):
        program = parse(self.SOURCE)
        mpi = build_mpi_cfg(program)
        truth = concrete_matches(program, 7, cfg=mpi.cfg)
        assert set(truth.node_edges) <= mpi.comm_edges
        assert mpi.edge_count() == 2

    def test_data_literals_do_not_inflate_probe(self):
        program = parse("x = 98\nif id == 0 then\nsend x -> 1\nelse\nreceive y <- 0\nend")
        assert probe_np_for(program) == DEFAULT_PROBE_NP

    def test_probe_is_clamped(self):
        program = parse(
            "if id == 500 then\nsend 1 -> 0\nelse\nreceive y <- 500\nend"
        )
        assert probe_np_for(program) == MAX_PROBE_NP

    def test_explicit_probe_np_still_honored(self):
        program = parse(self.SOURCE)
        mpi = build_mpi_cfg(program, probe_np=6)
        assert mpi.comm_edges == set()  # the caller asked for np=6 facts
