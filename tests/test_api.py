"""Public API surface tests."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        result, cfg, client = repro.analyze(repro.programs.get("pingpong"))
        assert not result.gave_up
        assert result.topology.describe()

    def test_parse_and_run(self):
        program = repro.parse("print id")
        trace = repro.run_program(program, 2)
        assert trace.prints == {0: [0], 1: [1]}

    def test_cartesian_entry_point(self):
        result, _, _ = repro.analyze_cartesian(
            repro.programs.get("transpose_square")
        )
        assert not result.gave_up
